// Reproducible fixpoint benchmark: Best-Path fixpoint time, derivation
// throughput, and peak RSS across node counts x ProvMode {none, condensed,
// full}. Seeds the perf trajectory for the rule-firing inner loop (the
// paper's Figures 4-6 are about making provenance cheap enough to leave on;
// this bench tracks whether our evaluator keeps up as networks grow).
//
// Writes a JSON report (default ./BENCH_fixpoint.json, i.e. the repo root
// when run from there) so CI can archive per-PR numbers.
//
// Thread-count axis (the parallel sharded executor, ISSUE 7): none and
// condensed points repeat at threads in {1, 2, 4, hw} (deduped after
// resolving hw = hardware concurrency) with `speedup_vs_1t` relative to the
// same (n, mode) at one thread. Full mode pins itself sequential (the
// shared derivation arena and receive-side provenance-variable interning
// must stay in arrival order), so its points carry threads=1 only. The
// top-level `hw_threads` field records the machine the numbers came from —
// a 1-CPU host honestly reports ~1x speedups.
//
// Durable-store axis (ISSUE 9): each full-mode point repeats once with the
// on-disk offline archive enabled ("full+disk" rows, `archive: 1` in the
// JSON) and reports `archive_disk_bytes`, the page-log footprint summed
// over nodes. The arena's accounted peak rides along in every full point
// as mem_peak_bytes.prov_arena.
//
// Fault axis (ISSUE 10): a 50-node condensed fixture repeats under the
// ack/retransmit transport at uniform link loss in {0, 1%, 5%}
// (`fault_axis` rows in the JSON). Each row records the wall time, the
// virtual-time convergence instant (the real cost of loss — retransmission
// backoff runs on the virtual clock), and the retransmit overhead: frames
// resent per data frame delivered. The loss=0 row is the armed-but-idle
// transport, so the 1%/5% deltas isolate the faults from the ack machinery.
//
// Usage:
//   bench_fixpoint [--quick] [--out PATH]
//
//   --quick      node counts {10, 25, 50}, 1 run per point, threads {1, hw},
//                no 500-node point (CI smoke)
//   --out PATH   JSON output path (default BENCH_fixpoint.json)
//
// Environment knobs:
//   PROVNET_FIXPOINT_RUNS   repetitions per point (default 3; --quick: 1)
//   PROVNET_FIXPOINT_SEED   topology seed (default 20080407)

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "obs/export.h"
#include "obs/mem.h"
#include "obs/profiler.h"
#include "util/logging.h"

using namespace provnet;

namespace {

struct Config {
  std::vector<size_t> node_counts = {10, 25, 50, 75, 100};
  // 0 = hardware concurrency; resolved and deduped in main().
  std::vector<size_t> thread_counts = {1, 2, 4, 0};
  size_t runs = 3;
  uint64_t seed = 20080407;
  std::string out_path = "BENCH_fixpoint.json";
  bool big_point = true;  // the 500-node condensed point (1 run)
};

struct Point {
  size_t n = 0;
  ProvMode mode = ProvMode::kNone;
  size_t threads = 1;
  bool archive = false;            // offline archive on disk (full mode)
  uint64_t archive_disk_bytes = 0; // page-log bytes summed over nodes
  size_t runs = 1;                 // runs averaged into this point
  double wall_seconds = 0.0;       // mean over runs
  double speedup_vs_1t = 1.0;      // wall(1 thread) / wall, same (n, mode)
  double derivations = 0.0;        // mean over runs
  double derivations_per_sec = 0.0;
  double join_candidates = 0.0;
  double events = 0.0;
  double messages = 0.0;
  double mbytes = 0.0;
  long rss_peak_kb = 0;  // process high-water mark after this point
  // From the point's last run (profiler + memory accounting enabled):
  // serial-commit share of the parallel executor's time, and per-subsystem
  // accounted peaks.
  double commit_serial_fraction = 0.0;
  uint64_t mem_peak[obs::kNumMemSubsystems] = {};
  uint64_t total_peak_bytes = 0;
};

// One row of the loss axis: the same Best-Path fixpoint with the reliable
// transport armed and a seeded uniform-loss plan on every link.
struct FaultPoint {
  size_t n = 0;
  double loss = 0.0;
  size_t runs = 1;
  double wall_seconds = 0.0;      // mean over runs
  double vt_converge_s = 0.0;     // virtual-time quiescence instant (mean)
  double derivations = 0.0;
  double messages = 0.0;          // data frames delivered
  double retransmits = 0.0;
  double acks = 0.0;
  double losses = 0.0;            // frames the injector dropped
  double retransmit_overhead = 0.0;  // retransmits per delivered data frame
};

long PeakRssKb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // KiB on Linux
}

EngineOptions OptionsFor(ProvMode mode, uint64_t seed, size_t threads) {
  EngineOptions opts;
  opts.seed = seed;
  opts.prov_mode = mode;
  opts.threads = threads;
  // Condensed/full annotations at tuple grain: the configuration the
  // incremental evaluator's restriction pruning needs (bench_churn's "prov"
  // variant), i.e. the cost of leaving provenance on.
  if (mode != ProvMode::kNone) opts.prov_grain = ProvGrain::kTuple;
  return opts;
}

Result<Point> RunPoint(size_t n, ProvMode mode, size_t threads, bool archive,
                       size_t runs, const Config& cfg) {
  Point point;
  point.n = n;
  point.mode = mode;
  point.threads = threads;
  point.archive = archive;
  const std::string archive_dir =
      archive ? "/tmp/provnet_bench_fixpoint_archive" : "";
  obs::MemAccounting& mem = obs::MemAccounting::Global();
  for (size_t run = 0; run < runs; ++run) {
    // Per-run accounting window: peaks reported for a point belong to its
    // last run alone (tables/queues from the previous engine are released
    // when it dies; Reset clears the peak high-water marks).
    mem.Reset();
    mem.Enable();
    if (archive) {
      std::error_code ec;
      std::filesystem::remove_all(archive_dir, ec);  // fresh logs per run
    }
    Rng rng(cfg.seed + run * 1000003 + n);
    Topology topo = Topology::RingPlusRandom(n, /*outdegree=*/3, rng);
    EngineOptions opts = OptionsFor(mode, cfg.seed + run, threads);
    if (archive) {
      opts.record_offline = true;
      opts.archive_dir = archive_dir;
    }
    PROVNET_ASSIGN_OR_RETURN(
        std::unique_ptr<Engine> engine,
        Engine::Create(topo, BestPathNdlogProgram(), opts));
    engine->profiler().Enable();
    PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
    auto t0 = std::chrono::steady_clock::now();
    PROVNET_ASSIGN_OR_RETURN(RunStats stats, engine->Run());
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    point.wall_seconds += secs;
    point.derivations += static_cast<double>(stats.derivations);
    point.join_candidates += static_cast<double>(stats.join_candidates);
    point.events += static_cast<double>(stats.events);
    point.messages += static_cast<double>(stats.messages);
    point.mbytes += static_cast<double>(stats.bytes) / 1e6;
    if (run + 1 == runs) {
      point.commit_serial_fraction = engine->profiler().CommitSerialFraction();
      for (size_t i = 0; i < obs::kNumMemSubsystems; ++i) {
        point.mem_peak[i] =
            mem.PeakBytes(static_cast<obs::MemSubsystem>(i));
      }
      point.total_peak_bytes = mem.TotalPeakBytes();
      for (NodeId node = 0; node < engine->num_nodes(); ++node) {
        point.archive_disk_bytes +=
            engine->node(node).offline_store().DiskBytes();
      }
    }
  }
  if (archive) {
    std::error_code ec;
    std::filesystem::remove_all(archive_dir, ec);
  }
  double nruns = static_cast<double>(runs);
  point.wall_seconds /= nruns;
  point.derivations /= nruns;
  point.join_candidates /= nruns;
  point.events /= nruns;
  point.messages /= nruns;
  point.mbytes /= nruns;
  point.derivations_per_sec =
      point.wall_seconds > 0 ? point.derivations / point.wall_seconds : 0.0;
  point.rss_peak_kb = PeakRssKb();
  return point;
}

uint64_t CounterValue(const Engine& engine, const char* name) {
  const obs::Counter* c = engine.metrics().FindCounter(name);
  return c != nullptr ? c->value : 0;
}

Result<FaultPoint> RunFaultPoint(size_t n, double loss, size_t runs,
                                 const Config& cfg) {
  FaultPoint point;
  point.n = n;
  point.loss = loss;
  point.runs = runs;
  for (size_t run = 0; run < runs; ++run) {
    Rng rng(cfg.seed + run * 1000003 + n);
    Topology topo = Topology::RingPlusRandom(n, /*outdegree=*/3, rng);
    EngineOptions opts =
        OptionsFor(ProvMode::kCondensed, cfg.seed + run, /*threads=*/1);
    // loss=0 still arms the ack/retransmit transport so the row measures
    // the idle transport, not the lossless fast path.
    opts.reliable_transport = true;
    if (loss > 0) opts.fault_plan = FaultPlan::UniformLoss(loss, cfg.seed + run);
    PROVNET_ASSIGN_OR_RETURN(
        std::unique_ptr<Engine> engine,
        Engine::Create(topo, BestPathNdlogProgram(), opts));
    PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
    auto t0 = std::chrono::steady_clock::now();
    PROVNET_ASSIGN_OR_RETURN(RunStats stats, engine->Run());
    auto t1 = std::chrono::steady_clock::now();
    point.wall_seconds += std::chrono::duration<double>(t1 - t0).count();
    point.vt_converge_s += engine->network().now();
    point.derivations += static_cast<double>(stats.derivations);
    point.messages += static_cast<double>(stats.messages);
    point.retransmits +=
        static_cast<double>(CounterValue(*engine, "net.retransmits"));
    point.acks +=
        static_cast<double>(CounterValue(*engine, "net.acks_received"));
    point.losses += static_cast<double>(CounterValue(*engine, "faults.losses"));
  }
  double nruns = static_cast<double>(runs);
  point.wall_seconds /= nruns;
  point.vt_converge_s /= nruns;
  point.derivations /= nruns;
  point.messages /= nruns;
  point.retransmits /= nruns;
  point.acks /= nruns;
  point.losses /= nruns;
  point.retransmit_overhead =
      point.messages > 0 ? point.retransmits / point.messages : 0.0;
  return point;
}

bool WriteFile(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

void WriteJson(const Config& cfg, const std::vector<Point>& points,
               const std::vector<FaultPoint>& fault_points) {
  obs::JsonWriter w;
  w.BeginObject()
      .Field("bench", "fixpoint")
      .Field("workload", "bestpath-ndlog")
      .Field("outdegree", 3)
      .Field("seed", cfg.seed)
      .Field("runs", uint64_t{cfg.runs})
      .Field("hw_threads",
             uint64_t{std::max(1u, std::thread::hardware_concurrency())});
  w.Key("points").BeginArray();
  for (const Point& p : points) {
    w.BeginObject()
        .Field("n", uint64_t{p.n})
        .Field("prov_mode", ProvModeName(p.mode))
        .Field("threads", uint64_t{p.threads})
        .Field("archive", uint64_t{p.archive ? 1u : 0u})
        .Field("archive_disk_bytes", p.archive_disk_bytes)
        .Field("runs", uint64_t{p.runs})
        .Field("wall_seconds", p.wall_seconds, "%.6f")
        .Field("speedup_vs_1t", p.speedup_vs_1t, "%.3f")
        .Field("derivations", p.derivations, "%.0f")
        .Field("derivations_per_sec", p.derivations_per_sec, "%.0f")
        .Field("join_candidates", p.join_candidates, "%.0f")
        .Field("events", p.events, "%.0f")
        .Field("messages", p.messages, "%.0f")
        .Field("mbytes", p.mbytes, "%.3f")
        .Field("rss_peak_kb", int64_t{p.rss_peak_kb})
        .Field("peak_rss_bytes", uint64_t{static_cast<uint64_t>(p.rss_peak_kb) *
                                          1024})
        .Field("commit_serial_fraction", p.commit_serial_fraction, "%.6f");
    w.Key("mem_peak_bytes").BeginObject();
    for (size_t i = 0; i < obs::kNumMemSubsystems; ++i) {
      w.Field(obs::MemSubsystemName(static_cast<obs::MemSubsystem>(i)),
              p.mem_peak[i]);
    }
    w.EndObject();
    w.Field("total_peak_bytes", p.total_peak_bytes);
    w.EndObject();
  }
  w.EndArray();
  w.Key("fault_axis").BeginArray();
  for (const FaultPoint& p : fault_points) {
    w.BeginObject()
        .Field("n", uint64_t{p.n})
        .Field("loss", p.loss, "%.3f")
        .Field("runs", uint64_t{p.runs})
        .Field("wall_seconds", p.wall_seconds, "%.6f")
        .Field("vt_converge_s", p.vt_converge_s, "%.4f")
        .Field("derivations", p.derivations, "%.0f")
        .Field("messages", p.messages, "%.0f")
        .Field("retransmits", p.retransmits, "%.1f")
        .Field("acks", p.acks, "%.1f")
        .Field("losses", p.losses, "%.1f")
        .Field("retransmit_overhead", p.retransmit_overhead, "%.4f")
        .EndObject();
  }
  w.EndArray().EndObject();
  std::printf("\n");
  WriteFile(cfg.out_path, w.Take() + "\n");
}

// One extra instrumented run at the largest node count: its full metrics
// snapshot and (sampled) trace stream are the per-PR observability
// artifacts CI archives next to the BENCH json.
Status WriteObsArtifacts(const Config& cfg) {
  size_t n = cfg.node_counts.back();
  Rng rng(cfg.seed + n);
  Topology topo = Topology::RingPlusRandom(n, /*outdegree=*/3, rng);
  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathNdlogProgram(),
                     OptionsFor(ProvMode::kCondensed, cfg.seed,
                                /*threads=*/1)));
  engine->tracer().Enable(/*capacity=*/8192, /*sample_every=*/16);
  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_RETURN_IF_ERROR(engine->Run().status());
  WriteFile("OBS_fixpoint.json", obs::SnapshotJson(engine->metrics()));
  WriteFile("TRACE_fixpoint.jsonl", engine->tracer().ToJsonl());
  return OkStatus();
}

// PROF_fixpoint.json: wall-clock phase profile, lane utilization, and
// per-subsystem memory peaks for the two 100-node acceptance fixtures
// (condensed at full thread width, full pinned sequential). Written on
// every invocation, --quick included, so CI always archives it.
Status WriteProfArtifact(const Config& cfg) {
  const size_t n = 100;
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  struct Fixture {
    ProvMode mode;
    size_t threads;
  };
  // The condensed fixture runs at least 4 lanes even on small containers:
  // commit_serial_fraction and lane utilization are only meaningful when
  // the parallel executor actually splits work.
  const Fixture fixtures[] = {{ProvMode::kCondensed, std::max<size_t>(hw, 4)},
                              {ProvMode::kFull, 1}};

  obs::JsonWriter w;
  w.BeginObject()
      .Field("bench", "fixpoint_profile")
      .Field("workload", "bestpath-ndlog")
      .Field("seed", cfg.seed)
      .Field("hw_threads", uint64_t{hw});
  w.Key("fixtures").BeginArray();
  obs::MemAccounting& mem = obs::MemAccounting::Global();
  for (const Fixture& fx : fixtures) {
    mem.Reset();
    mem.Enable();
    Rng rng(cfg.seed + n);
    Topology topo = Topology::RingPlusRandom(n, /*outdegree=*/3, rng);
    PROVNET_ASSIGN_OR_RETURN(
        std::unique_ptr<Engine> engine,
        Engine::Create(topo, BestPathNdlogProgram(),
                       OptionsFor(fx.mode, cfg.seed, fx.threads)));
    engine->profiler().Enable();
    PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
    PROVNET_RETURN_IF_ERROR(engine->Run().status());
    w.BeginObject()
        .Field("n", uint64_t{n})
        .Field("prov_mode", ProvModeName(fx.mode))
        .Field("threads", uint64_t{fx.threads});
    obs::WriteProfileFields(w, engine->profiler(), mem);
    w.EndObject();
  }
  w.EndArray().EndObject();
  WriteFile("PROF_fixpoint.json", w.Take() + "\n");
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.node_counts = {10, 25, 50};
      cfg.thread_counts = {1, 0};
      cfg.runs = 1;
      cfg.big_point = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  if (const char* v = std::getenv("PROVNET_FIXPOINT_RUNS")) {
    cfg.runs = static_cast<size_t>(std::atoll(v));
    if (cfg.runs < 1) cfg.runs = 1;
  }
  if (const char* v = std::getenv("PROVNET_FIXPOINT_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::atoll(v));
  }
  // Resolve hw (0) and dedup, preserving order: on a 1-core host {1,2,4,hw}
  // becomes {1,2,4}.
  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> thread_axis;
  for (size_t t : cfg.thread_counts) {
    size_t resolved = t == 0 ? hw : t;
    if (std::find(thread_axis.begin(), thread_axis.end(), resolved) ==
        thread_axis.end()) {
      thread_axis.push_back(resolved);
    }
  }

  const ProvMode modes[] = {ProvMode::kNone, ProvMode::kCondensed,
                            ProvMode::kFull};
  std::printf("bench_fixpoint: Best-Path fixpoint, outdegree 3, %zu run(s) "
              "per point, hw threads %zu\n\n",
              cfg.runs, hw);
  std::printf("%5s %-10s %3s %12s %8s %14s %14s %12s %10s %12s\n", "n",
              "prov", "thr", "wall s", "speedup", "derivations", "deriv/sec",
              "candidates", "MB", "rss KiB");

  std::vector<Point> points;
  auto run_point = [&](size_t n, ProvMode mode, size_t threads, bool archive,
                       size_t runs) -> bool {
    Result<Point> point = RunPoint(n, mode, threads, archive, runs, cfg);
    if (!point.ok()) {
      std::fprintf(stderr, "point n=%zu mode=%s threads=%zu failed: %s\n", n,
                   ProvModeName(mode), threads,
                   point.status().ToString().c_str());
      return false;
    }
    Point p = point.value();
    for (const Point& base : points) {
      if (base.n == p.n && base.mode == p.mode && base.archive == p.archive &&
          base.threads == 1 && p.wall_seconds > 0) {
        p.speedup_vs_1t = base.wall_seconds / p.wall_seconds;
        break;
      }
    }
    std::string label = ProvModeName(p.mode);
    if (p.archive) label += "+disk";
    std::printf(
        "%5zu %-10s %3zu %12.4f %8.2f %14.0f %14.0f %12.0f %10.3f %12ld\n",
        p.n, label.c_str(), p.threads, p.wall_seconds, p.speedup_vs_1t,
        p.derivations, p.derivations_per_sec, p.join_candidates, p.mbytes,
        p.rss_peak_kb);
    points.push_back(p);
    return true;
  };

  for (size_t n : cfg.node_counts) {
    for (ProvMode mode : modes) {
      // Full mode pins itself sequential (shared derivation arena plus
      // receive-side provenance-variable interning must stay in arrival
      // order); its thread-axis repeats would measure the identical pinned
      // path. It runs twice instead: memory-resident, then with the
      // on-disk offline archive (the durable-store cost axis).
      size_t axis_len = mode == ProvMode::kFull ? 1 : thread_axis.size();
      for (size_t ti = 0; ti < axis_len; ++ti) {
        if (!run_point(n, mode, thread_axis[ti], /*archive=*/false, cfg.runs)) {
          return 1;
        }
      }
      if (mode == ProvMode::kFull &&
          !run_point(n, mode, /*threads=*/1, /*archive=*/true, cfg.runs)) {
        return 1;
      }
    }
  }
  if (cfg.big_point) {
    // The headline scale point: 500-node condensed Best-Path, one run per
    // thread count (ROADMAP item 1's "500-node networks become routine").
    for (size_t threads : thread_axis) {
      if (!run_point(500, ProvMode::kCondensed, threads, /*archive=*/false,
                     1)) {
        return 1;
      }
    }
  }

  // Fault axis: 50-node condensed fixture under the reliable transport at
  // uniform loss in {0, 1%, 5%} — convergence time and retransmit overhead.
  const double loss_axis[] = {0.0, 0.01, 0.05};
  std::vector<FaultPoint> fault_points;
  std::printf("\nfault axis: 50-node condensed, reliable transport, "
              "uniform loss\n");
  std::printf("%6s %12s %12s %12s %12s %10s %12s\n", "loss", "wall s",
              "vt conv s", "messages", "retransmits", "losses", "rtx/frame");
  for (double loss : loss_axis) {
    Result<FaultPoint> fp = RunFaultPoint(/*n=*/50, loss, cfg.runs, cfg);
    if (!fp.ok()) {
      std::fprintf(stderr, "fault point loss=%.2f failed: %s\n", loss,
                   fp.status().ToString().c_str());
      return 1;
    }
    const FaultPoint& p = fp.value();
    std::printf("%6.2f %12.4f %12.4f %12.0f %12.1f %10.1f %12.4f\n", p.loss,
                p.wall_seconds, p.vt_converge_s, p.messages, p.retransmits,
                p.losses, p.retransmit_overhead);
    fault_points.push_back(p);
  }

  WriteJson(cfg, points, fault_points);
  Status obs_status = WriteObsArtifacts(cfg);
  if (!obs_status.ok()) {
    std::fprintf(stderr, "obs artifacts failed: %s\n",
                 obs_status.ToString().c_str());
    return 1;
  }
  Status prof_status = WriteProfArtifact(cfg);
  if (!prof_status.ok()) {
    std::fprintf(stderr, "profile artifact failed: %s\n",
                 prof_status.ToString().c_str());
    return 1;
  }
  return 0;
}
