// Reproducible fixpoint benchmark: Best-Path fixpoint time, derivation
// throughput, and peak RSS across node counts x ProvMode {none, condensed,
// full}. Seeds the perf trajectory for the rule-firing inner loop (the
// paper's Figures 4-6 are about making provenance cheap enough to leave on;
// this bench tracks whether our evaluator keeps up as networks grow).
//
// Writes a JSON report (default ./BENCH_fixpoint.json, i.e. the repo root
// when run from there) so CI can archive per-PR numbers.
//
// Usage:
//   bench_fixpoint [--quick] [--out PATH]
//
//   --quick      node counts {10, 25, 50} and 1 run per point (CI smoke)
//   --out PATH   JSON output path (default BENCH_fixpoint.json)
//
// Environment knobs:
//   PROVNET_FIXPOINT_RUNS   repetitions per point (default 3; --quick: 1)
//   PROVNET_FIXPOINT_SEED   topology seed (default 20080407)

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "obs/export.h"
#include "util/logging.h"

using namespace provnet;

namespace {

struct Config {
  std::vector<size_t> node_counts = {10, 25, 50, 75, 100};
  size_t runs = 3;
  uint64_t seed = 20080407;
  std::string out_path = "BENCH_fixpoint.json";
};

struct Point {
  size_t n = 0;
  ProvMode mode = ProvMode::kNone;
  double wall_seconds = 0.0;       // mean over runs
  double derivations = 0.0;        // mean over runs
  double derivations_per_sec = 0.0;
  double join_candidates = 0.0;
  double events = 0.0;
  double messages = 0.0;
  double mbytes = 0.0;
  long rss_peak_kb = 0;  // process high-water mark after this point
};

long PeakRssKb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // KiB on Linux
}

EngineOptions OptionsFor(ProvMode mode, uint64_t seed) {
  EngineOptions opts;
  opts.seed = seed;
  opts.prov_mode = mode;
  // Condensed/full annotations at tuple grain: the configuration the
  // incremental evaluator's restriction pruning needs (bench_churn's "prov"
  // variant), i.e. the cost of leaving provenance on.
  if (mode != ProvMode::kNone) opts.prov_grain = ProvGrain::kTuple;
  return opts;
}

Result<Point> RunPoint(size_t n, ProvMode mode, const Config& cfg) {
  Point point;
  point.n = n;
  point.mode = mode;
  for (size_t run = 0; run < cfg.runs; ++run) {
    Rng rng(cfg.seed + run * 1000003 + n);
    Topology topo = Topology::RingPlusRandom(n, /*outdegree=*/3, rng);
    PROVNET_ASSIGN_OR_RETURN(
        std::unique_ptr<Engine> engine,
        Engine::Create(topo, BestPathNdlogProgram(),
                       OptionsFor(mode, cfg.seed + run)));
    PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
    auto t0 = std::chrono::steady_clock::now();
    PROVNET_ASSIGN_OR_RETURN(RunStats stats, engine->Run());
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    point.wall_seconds += secs;
    point.derivations += static_cast<double>(stats.derivations);
    point.join_candidates += static_cast<double>(stats.join_candidates);
    point.events += static_cast<double>(stats.events);
    point.messages += static_cast<double>(stats.messages);
    point.mbytes += static_cast<double>(stats.bytes) / 1e6;
  }
  double runs = static_cast<double>(cfg.runs);
  point.wall_seconds /= runs;
  point.derivations /= runs;
  point.join_candidates /= runs;
  point.events /= runs;
  point.messages /= runs;
  point.mbytes /= runs;
  point.derivations_per_sec =
      point.wall_seconds > 0 ? point.derivations / point.wall_seconds : 0.0;
  point.rss_peak_kb = PeakRssKb();
  return point;
}

bool WriteFile(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

void WriteJson(const Config& cfg, const std::vector<Point>& points) {
  obs::JsonWriter w;
  w.BeginObject()
      .Field("bench", "fixpoint")
      .Field("workload", "bestpath-ndlog")
      .Field("outdegree", 3)
      .Field("seed", cfg.seed)
      .Field("runs", uint64_t{cfg.runs});
  w.Key("points").BeginArray();
  for (const Point& p : points) {
    w.BeginObject()
        .Field("n", uint64_t{p.n})
        .Field("prov_mode", ProvModeName(p.mode))
        .Field("wall_seconds", p.wall_seconds, "%.6f")
        .Field("derivations", p.derivations, "%.0f")
        .Field("derivations_per_sec", p.derivations_per_sec, "%.0f")
        .Field("join_candidates", p.join_candidates, "%.0f")
        .Field("events", p.events, "%.0f")
        .Field("messages", p.messages, "%.0f")
        .Field("mbytes", p.mbytes, "%.3f")
        .Field("rss_peak_kb", int64_t{p.rss_peak_kb})
        .EndObject();
  }
  w.EndArray().EndObject();
  std::printf("\n");
  WriteFile(cfg.out_path, w.Take() + "\n");
}

// One extra instrumented run at the largest node count: its full metrics
// snapshot and (sampled) trace stream are the per-PR observability
// artifacts CI archives next to the BENCH json.
Status WriteObsArtifacts(const Config& cfg) {
  size_t n = cfg.node_counts.back();
  Rng rng(cfg.seed + n);
  Topology topo = Topology::RingPlusRandom(n, /*outdegree=*/3, rng);
  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathNdlogProgram(),
                     OptionsFor(ProvMode::kCondensed, cfg.seed)));
  engine->tracer().Enable(/*capacity=*/8192, /*sample_every=*/16);
  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_RETURN_IF_ERROR(engine->Run().status());
  WriteFile("OBS_fixpoint.json", obs::SnapshotJson(engine->metrics()));
  WriteFile("TRACE_fixpoint.jsonl", engine->tracer().ToJsonl());
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.node_counts = {10, 25, 50};
      cfg.runs = 1;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  if (const char* v = std::getenv("PROVNET_FIXPOINT_RUNS")) {
    cfg.runs = static_cast<size_t>(std::atoll(v));
    if (cfg.runs < 1) cfg.runs = 1;
  }
  if (const char* v = std::getenv("PROVNET_FIXPOINT_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::atoll(v));
  }

  const ProvMode modes[] = {ProvMode::kNone, ProvMode::kCondensed,
                            ProvMode::kFull};
  std::printf("bench_fixpoint: Best-Path fixpoint, outdegree 3, %zu run(s) "
              "per point\n\n",
              cfg.runs);
  std::printf("%5s %-10s %12s %14s %14s %12s %10s %12s\n", "n", "prov",
              "wall s", "derivations", "deriv/sec", "candidates", "MB",
              "rss KiB");

  std::vector<Point> points;
  for (size_t n : cfg.node_counts) {
    for (ProvMode mode : modes) {
      Result<Point> point = RunPoint(n, mode, cfg);
      if (!point.ok()) {
        std::fprintf(stderr, "point n=%zu mode=%s failed: %s\n", n,
                     ProvModeName(mode),
                     point.status().ToString().c_str());
        return 1;
      }
      const Point& p = point.value();
      std::printf("%5zu %-10s %12.4f %14.0f %14.0f %12.0f %10.3f %12ld\n",
                  p.n, ProvModeName(p.mode), p.wall_seconds, p.derivations,
                  p.derivations_per_sec, p.join_candidates, p.mbytes,
                  p.rss_peak_kb);
      points.push_back(p);
    }
  }

  WriteJson(cfg, points);
  Status obs_status = WriteObsArtifacts(cfg);
  if (!obs_status.ok()) {
    std::fprintf(stderr, "obs artifacts failed: %s\n",
                 obs_status.ToString().c_str());
    return 1;
  }
  return 0;
}
