// Security testbed benchmark: attack campaigns vs. the honest baseline.
//
// A Best-Path deployment on a ring+random topology runs the same churn
// script three ways:
//
//   ndlog     no authentication, no provenance — the paper's NDLog
//             baseline; what the network costs with no defenses at all
//   secure    authenticated (says tags + signed anti-replay headers),
//             condensed principal-grain provenance, online records — the
//             verification pipeline armed, nobody attacking. The delta vs.
//             ndlog is the price of the defenses.
//   attacked  secure + a Byzantine campaign: stolen-key forgery,
//             bad-signature forgery, replay, equivocation, and unauthorized
//             retraction composed with the same link churn, with periodic
//             audit sweeps (equivocation audit, policy-violation scan,
//             provenance traceback) and compromise response. The delta vs.
//             secure is the price of being attacked *and* cleaning up.
//
// Reported: maintenance latency, bandwidth, sign/verify counts, per-class
// injection/detection tallies, detection latency, and the acceptance
// verdict (every attack rejected or detected; zero forged tuples left in
// any honest fixpoint). Writes BENCH_adversary.json (CI uploads it per PR).
//
// Usage:
//   bench_adversary [--quick] [--loss RATE] [--out PATH]
//
//   --quick      20 nodes, 1 injection per class (CI smoke)
//   --loss RATE  uniform link-loss fault plan on all three variants (ISSUE
//                10 loss-robustness check): the ack/retransmit transport
//                masks the loss, every detection must still land, and no
//                retransmission may be booked as a kReplay security event
//                (the JSON records kreplay_false_positives; >0 fails)
//   --out PATH   JSON output path (default BENCH_adversary.json)
//
// Environment knobs:
//   PROVNET_ADV_N        nodes (default 50)
//   PROVNET_ADV_CLASSES  injections per attack class (default 2)
//   PROVNET_ADV_SEED     topology/script seed (default 20080407)
//   PROVNET_ADV_RSA      1 = RSA says tags (default), 0 = HMAC
//   PROVNET_ADV_LOSS     same as --loss

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/campaign.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "dynamics/churn.h"
#include "net/topology.h"
#include "obs/export.h"

using namespace provnet;

namespace {

struct Config {
  size_t n = 50;
  size_t per_class = 2;
  uint64_t seed = 20080407;
  bool rsa = true;
  double loss = 0.0;  // uniform link-loss rate; 0 = no fault plan
  std::string out_path = "BENCH_adversary.json";
};

// With --loss, every variant runs the same seeded uniform-loss plan (the
// plan arms the reliable transport implicitly), so the ndlog/secure/attacked
// comparison stays apples-to-apples under faults.
void ApplyFaults(EngineOptions& opts, const Config& cfg) {
  if (cfg.loss > 0) {
    opts.fault_plan = FaultPlan::UniformLoss(cfg.loss, cfg.seed ^ 0xfa017ull);
  }
}

struct VariantStats {
  std::string name;
  double wall_seconds = 0.0;  // maintenance phase (initial fixpoint excluded)
  double mbytes = 0.0;
  uint64_t messages = 0;
  uint64_t signs = 0;
  uint64_t verifies = 0;
};

EngineOptions NdlogOptions(const Config& cfg) {
  EngineOptions opts;
  opts.seed = cfg.seed;
  ApplyFaults(opts, cfg);
  return opts;
}

EngineOptions SecureOptions(const Config& cfg) {
  EngineOptions opts;
  opts.seed = cfg.seed;
  opts.authenticate = true;
  opts.says_level = cfg.rsa ? SaysLevel::kRsa : SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kPrincipal;
  opts.record_online = true;
  ApplyFaults(opts, cfg);
  return opts;
}

Result<std::unique_ptr<Engine>> FreshFixpoint(const Topology& topo,
                                              EngineOptions opts) {
  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathNdlogProgram(), opts));
  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_RETURN_IF_ERROR(engine->Run().status());
  return engine;
}

// Churn-only maintenance run (the honest baselines).
Result<VariantStats> RunHonest(const std::string& name, const Topology& topo,
                               const ChurnScript& churn, EngineOptions opts) {
  PROVNET_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                           FreshFixpoint(topo, opts));
  Network::Meters m0 = engine->network().MeterSnapshot();
  uint64_t signs0 = engine->authenticator().sign_count();
  uint64_t verifies0 = engine->authenticator().verify_count();
  auto t0 = std::chrono::steady_clock::now();

  ChurnDriver driver(*engine, /*link_arity=*/3);
  PROVNET_RETURN_IF_ERROR(driver.Replay(churn).status());

  auto t1 = std::chrono::steady_clock::now();
  Network::Meters m1 = engine->network().MeterSnapshot();
  VariantStats out;
  out.name = name;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.mbytes = static_cast<double>(m1.bytes - m0.bytes) / 1e6;
  out.messages = m1.messages - m0.messages;
  out.signs = engine->authenticator().sign_count() - signs0;
  out.verifies = engine->authenticator().verify_count() - verifies0;
  return out;
}

struct AttackedResult {
  VariantStats stats;
  CampaignReport report;
  std::map<std::string, size_t> injected_per_class;
  std::map<std::string, size_t> detected_per_class;
  // Loss-robustness bookkeeping (ISSUE 10): every kReplay SecurityEvent in
  // the engine's whole lifetime must be attributable to an injected replay
  // attack. Retransmitted honest frames dedup silently; if one were booked
  // as a replay, kreplay_events would exceed the injected replay count.
  uint64_t kreplay_events = 0;
  uint64_t kreplay_false_positives = 0;
};

Result<AttackedResult> RunAttacked(const Config& cfg, const Topology& topo,
                                   const ChurnScript& churn,
                                   const std::vector<NodeId>& attackers) {
  PROVNET_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                           FreshFixpoint(topo, SecureOptions(cfg)));
  Adversary adversary(*engine, cfg.seed ^ 0xad7e55a9);
  for (NodeId a : attackers) adversary.Compromise(a);

  Rng attack_rng(cfg.seed ^ 0x5eed);
  AttackScript script = AttackScript::RandomAttacks(
      topo, attackers, cfg.per_class, /*start=*/1.13, /*spacing=*/0.37,
      attack_rng);
  script.AddChurn(churn);
  double horizon = 2.0;
  for (const CampaignEvent& e : script.events) {
    horizon = std::max(horizon, e.at + 1.0);
  }
  script.AddAuditSweeps(1.5, 0.5, horizon);
  script.SortByTime();

  Network::Meters m0 = engine->network().MeterSnapshot();
  uint64_t signs0 = engine->authenticator().sign_count();
  uint64_t verifies0 = engine->authenticator().verify_count();
  auto t0 = std::chrono::steady_clock::now();

  AttackCampaignDriver driver(*engine, adversary, CampaignOptions{});
  PROVNET_ASSIGN_OR_RETURN(CampaignReport report, driver.Replay(script));

  auto t1 = std::chrono::steady_clock::now();
  Network::Meters m1 = engine->network().MeterSnapshot();

  AttackedResult out;
  out.stats.name = "attacked";
  out.stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.stats.mbytes = static_cast<double>(m1.bytes - m0.bytes) / 1e6;
  out.stats.messages = m1.messages - m0.messages;
  out.stats.signs = engine->authenticator().sign_count() - signs0;
  out.stats.verifies = engine->authenticator().verify_count() - verifies0;
  for (const AttackOutcome& o : report.outcomes) {
    const char* kind = AttackKindName(o.injection.kind);
    ++out.injected_per_class[kind];
    if (o.detected) ++out.detected_per_class[kind];
  }
  out.kreplay_events = engine->security_log().CountOf(SecurityEventKind::kReplay);
  uint64_t replay_injected = 0;
  auto it = out.injected_per_class.find(AttackKindName(AttackKind::kReplay));
  if (it != out.injected_per_class.end()) replay_injected = it->second;
  out.kreplay_false_positives = out.kreplay_events > replay_injected
                                    ? out.kreplay_events - replay_injected
                                    : 0;
  out.report = std::move(report);
  return out;
}

void WriteJson(const Config& cfg, const std::vector<VariantStats>& variants,
               const AttackedResult& attacked) {
  obs::JsonWriter w;
  w.BeginObject()
      .Field("bench", "adversary")
      .Field("workload", "bestpath-ndlog + attack campaign")
      .Field("n", uint64_t{cfg.n})
      .Field("per_class", uint64_t{cfg.per_class})
      .Field("says", cfg.rsa ? "rsa" : "hmac")
      .Field("seed", cfg.seed)
      .Field("loss", cfg.loss, "%.3f");
  w.Key("variants").BeginArray();
  for (const VariantStats& v : variants) {
    w.BeginObject()
        .Field("name", v.name)
        .Field("wall_seconds", v.wall_seconds, "%.6f")
        .Field("mbytes", v.mbytes, "%.3f")
        .Field("messages", v.messages)
        .Field("signs", v.signs)
        .Field("verifies", v.verifies)
        .EndObject();
  }
  w.EndArray();

  const CampaignReport& r = attacked.report;
  w.Key("campaign").BeginObject();
  w.Field("injected", uint64_t{r.injected})
      .Field("detected", uint64_t{r.detected})
      .Field("rejected_at_verify", uint64_t{r.rejected_at_verify})
      .Field("localized_correct", uint64_t{r.localized_correct})
      .Field("forged_in_fixpoint", uint64_t{r.forged_in_fixpoint})
      .Field("mean_detection_latency_s", r.mean_detection_latency_s, "%.4f")
      .Field("max_detection_latency_s", r.max_detection_latency_s, "%.4f")
      .Field("kreplay_events", attacked.kreplay_events)
      .Field("kreplay_false_positives", attacked.kreplay_false_positives);
  w.Key("per_class").BeginObject();
  for (const auto& [kind, injected] : attacked.injected_per_class) {
    size_t detected = 0;
    auto it = attacked.detected_per_class.find(kind);
    if (it != attacked.detected_per_class.end()) detected = it->second;
    w.Key(kind).BeginObject();
    w.Field("injected", uint64_t{injected})
        .Field("detected", uint64_t{detected})
        .EndObject();
  }
  w.EndObject();  // per_class
  w.EndObject();  // campaign

  double ndlog_mb = variants[0].mbytes, secure_mb = variants[1].mbytes;
  double attacked_mb = variants[2].mbytes;
  w.Key("overhead").BeginObject();
  w.Field("verification_bytes_ratio",
          ndlog_mb > 0 ? secure_mb / ndlog_mb : 0.0, "%.3f")
      .Field("attack_bytes_ratio",
             secure_mb > 0 ? attacked_mb / secure_mb : 0.0, "%.3f")
      .Field("verification_wall_ratio",
             variants[0].wall_seconds > 0
                 ? variants[1].wall_seconds / variants[0].wall_seconds
                 : 0.0,
             "%.3f")
      .Field("attack_wall_ratio",
             variants[1].wall_seconds > 0
                 ? variants[2].wall_seconds / variants[1].wall_seconds
                 : 0.0,
             "%.3f")
      .EndObject();
  w.EndObject();

  FILE* f = std::fopen(cfg.out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 cfg.out_path.c_str());
    return;
  }
  std::string body = w.Take() + "\n";
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", cfg.out_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.n = 20;
      cfg.per_class = 1;
    } else if (std::strcmp(argv[i], "--loss") == 0 && i + 1 < argc) {
      cfg.loss = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--loss RATE] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (const char* v = std::getenv("PROVNET_ADV_N")) {
    cfg.n = static_cast<size_t>(std::atoll(v));
    if (cfg.n < 6) cfg.n = 6;
  }
  if (const char* v = std::getenv("PROVNET_ADV_CLASSES")) {
    cfg.per_class = static_cast<size_t>(std::atoll(v));
    if (cfg.per_class < 1) cfg.per_class = 1;
  }
  if (const char* v = std::getenv("PROVNET_ADV_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::atoll(v));
  }
  if (const char* v = std::getenv("PROVNET_ADV_RSA")) {
    cfg.rsa = std::atoi(v) != 0;
  }
  if (const char* v = std::getenv("PROVNET_ADV_LOSS")) {
    cfg.loss = std::atof(v);
  }
  if (cfg.loss < 0 || cfg.loss >= 1) {
    std::fprintf(stderr, "--loss must be in [0, 1)\n");
    return 2;
  }

  Rng rng(cfg.seed);
  Topology topo = Topology::RingPlusRandom(cfg.n, 3, rng);
  Rng churn_rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  ChurnScript churn = ChurnScript::RandomLinkFlaps(
      topo, /*flaps=*/4, /*start=*/1.0, /*spacing=*/1.0, churn_rng);
  std::vector<NodeId> attackers = {
      static_cast<NodeId>(cfg.n / 7 + 1),
      static_cast<NodeId>(cfg.n / 2 + 1),
  };

  std::printf("bench_adversary: Best-Path on %zu nodes, 4 link flaps, "
              "%zu injections/class, attackers {%u, %u}, says=%s, "
              "loss=%.1f%%\n\n",
              cfg.n, cfg.per_class, attackers[0], attackers[1],
              cfg.rsa ? "rsa" : "hmac", cfg.loss * 100.0);
  std::printf("%-9s %10s %10s %9s %8s %9s\n", "variant", "wall s", "MB",
              "msgs", "signs", "verifies");

  std::vector<VariantStats> variants;
  auto ndlog = RunHonest("ndlog", topo, churn, NdlogOptions(cfg));
  if (!ndlog.ok()) {
    std::fprintf(stderr, "ndlog failed: %s\n",
                 ndlog.status().ToString().c_str());
    return 1;
  }
  variants.push_back(ndlog.value());
  auto secure = RunHonest("secure", topo, churn, SecureOptions(cfg));
  if (!secure.ok()) {
    std::fprintf(stderr, "secure failed: %s\n",
                 secure.status().ToString().c_str());
    return 1;
  }
  variants.push_back(secure.value());
  auto attacked = RunAttacked(cfg, topo, churn, attackers);
  if (!attacked.ok()) {
    std::fprintf(stderr, "attacked failed: %s\n",
                 attacked.status().ToString().c_str());
    return 1;
  }
  variants.push_back(attacked.value().stats);

  for (const VariantStats& v : variants) {
    std::printf("%-9s %10.3f %10.3f %9llu %8llu %9llu\n", v.name.c_str(),
                v.wall_seconds, v.mbytes,
                static_cast<unsigned long long>(v.messages),
                static_cast<unsigned long long>(v.signs),
                static_cast<unsigned long long>(v.verifies));
  }

  const CampaignReport& r = attacked.value().report;
  std::printf("\ncampaign: %s\n", r.Summary().c_str());
  for (const auto& [kind, injected] : attacked.value().injected_per_class) {
    size_t detected = 0;
    auto it = attacked.value().detected_per_class.find(kind);
    if (it != attacked.value().detected_per_class.end()) {
      detected = it->second;
    }
    std::printf("  %-18s injected=%zu detected=%zu\n", kind.c_str(), injected,
                detected);
  }

  WriteJson(cfg, variants, attacked.value());

  bool pass = r.forged_in_fixpoint == 0 && r.detected == r.injected &&
              attacked.value().injected_per_class.size() >= 4 &&
              attacked.value().kreplay_false_positives == 0;
  std::printf("\n%s: %zu attack classes, %zu/%zu detected, %zu forged "
              "tuples left in honest fixpoints, %llu kReplay false "
              "positives\n",
              pass ? "PASS" : "FAIL",
              attacked.value().injected_per_class.size(), r.detected,
              r.injected, r.forged_in_fixpoint,
              static_cast<unsigned long long>(
                  attacked.value().kreplay_false_positives));
  return pass ? 0 : 1;
}
