// Ablation A5: sampling and granularity optimizations (Section 5).
//
//  * 1-in-k provenance sampling (IP traceback): storage shrinks ~k-fold,
//    traceback recall degrades gracefully.
//  * Bloom-digest synopses (ForNet): constant storage per window, false
//    positives instead of misses.
//  * AS-level granularity: provenance volume vs attribution precision.

#include <cstdio>
#include <set>

#include "apps/bestpath.h"
#include "apps/forensics.h"
#include "apps/programs.h"
#include "util/logging.h"
#include "provenance/granularity.h"

using namespace provnet;

namespace {

struct SampleResult {
  uint32_t k = 1;
  size_t records = 0;
  double recall = 0.0;
};

}  // namespace

int main() {
  std::printf("=== Ablation A5: provenance sampling / digests / granularity "
              "===\n\n");

  Rng rng(31337);
  const size_t n = 24;
  Topology topo = Topology::RingPlusRandom(n, 3, rng);

  // Ground truth with full recording (k = 1).
  std::set<NodeId> truth;
  Tuple probe;
  {
    EngineOptions opts;
    opts.prov_mode = ProvMode::kPointers;
    auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
    PROVNET_CHECK(engine->InsertLinkFacts().ok());
    PROVNET_CHECK(engine->Run().ok());
    // Pick the longest best path at node 0 as the probe.
    size_t best_len = 0;
    for (const Tuple& t : engine->TuplesAt(0, "bestPath")) {
      if (t.arg(2).AsList().size() > best_len) {
        best_len = t.arg(2).AsList().size();
        probe = t;
      }
    }
    TracebackReport report = Traceback(*engine, 0, probe).value();
    truth = report.origin_nodes;
  }
  std::printf("probe tuple: %s\nground-truth origins: %zu nodes\n\n",
              probe.ToString().c_str(), truth.size());

  // Per-hop coverage: for every best path at node 0, the fraction of its
  // hop links whose provenance record survived sampling (IP traceback
  // reconstructs segment by segment from exactly such surviving marks).
  std::printf("-- 1-in-k sampling --\n%6s %12s %14s %14s\n", "k", "records",
              "hop_coverage", "full_trace");
  for (uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    EngineOptions opts;
    opts.prov_mode = ProvMode::kPointers;
    opts.sample_k = k;
    auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
    PROVNET_CHECK(engine->InsertLinkFacts().ok());
    PROVNET_CHECK(engine->Run().ok());
    size_t records = 0;
    for (NodeId i = 0; i < engine->num_nodes(); ++i) {
      records += engine->node(i).online_store().size();
    }
    size_t hops_total = 0, hops_present = 0;
    for (const Tuple& t : engine->TuplesAt(0, "bestPath")) {
      const auto& path = t.arg(2).AsList();
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        NodeId hop = path[i].AsAddress();
        // The hop's own link fact record: the mark this router would keep.
        bool present = false;
        for (const Tuple& link : engine->TuplesAt(hop, "link")) {
          if (link.arg(1) == path[i + 1] &&
              engine->node(hop).online_store().Lookup(DigestOf(link)) !=
                  nullptr) {
            present = true;
            break;
          }
        }
        ++hops_total;
        if (present) ++hops_present;
      }
    }
    double full = 0.0;
    Result<TracebackReport> report = Traceback(*engine, 0, probe);
    if (report.ok()) full = TracebackRecall(report.value(), truth);
    std::printf("%6u %12zu %14.2f %14.2f\n", k, records,
                hops_total == 0 ? 0.0
                                : static_cast<double>(hops_present) /
                                      static_cast<double>(hops_total),
                full);
  }

  std::printf("\n-- Bloom digest synopses (ForNet) --\n%10s %12s %14s\n",
              "bits", "storage(B)", "nodes_flagged");
  {
    EngineOptions opts;
    opts.prov_mode = ProvMode::kPointers;
    opts.record_offline = true;
    auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
    PROVNET_CHECK(engine->InsertLinkFacts().ok());
    PROVNET_CHECK(engine->Run().ok());
    for (size_t bits : {256u, 1024u, 8192u, 65536u}) {
      DigestTraceback digests(*engine, /*window_seconds=*/1.0, bits,
                              /*hashes=*/4);
      std::vector<NodeId> flagged =
          digests.NodesThatMaySawTuple(probe, 0.0, 1e9);
      std::printf("%10zu %12zu %14zu\n", bits, digests.TotalBytes(),
                  flagged.size());
    }
  }

  std::printf("\n-- AS granularity --\n%14s %12s %16s %16s\n", "nodes_per_as",
              "as_count", "witness_vars", "total_cube_vars");
  {
    EngineOptions opts;
    opts.authenticate = true;
    opts.says_level = SaysLevel::kHmac;
    opts.prov_mode = ProvMode::kCondensed;
    auto engine =
        Engine::Create(topo, BestPathSendlogProgram(), opts).value();
    PROVNET_CHECK(engine->InsertLinkFacts().ok());
    PROVNET_CHECK(engine->Run().ok());
    // Aggregate over every best path at node 0 so the numbers are not
    // dominated by one probe.
    std::vector<CondensedProv> conds;
    for (const Tuple& t : engine->TuplesAt(0, "bestPath")) {
      Result<CondensedProv> c = engine->CondensedOf(0, t);
      if (c.ok()) conds.push_back(std::move(c).value());
    }
    for (size_t per_as : {1u, 2u, 4u, 8u}) {
      AsMapping mapping = AsMapping::Blocks(n, per_as);
      size_t distinct = 0, total = 0;
      for (const CondensedProv& cond : conds) {
        // Principal var -> AS var: node principals are "n<i>".
        CondensedProv projected = ProjectCondensedToAs(
            cond, [&](ProvVar v) -> ProvVar {
              Result<NodeId> node = engine->NodeOf(engine->VarName(v));
              if (!node.ok()) return v;
              return 1000000u + mapping.AsOf(node.value());
            });
        std::set<ProvVar> vars;
        for (const auto& cube : projected.cubes) {
          vars.insert(cube.begin(), cube.end());
          total += cube.size();
        }
        distinct += vars.size();
      }
      std::printf("%14zu %12zu %16zu %16zu\n", per_as, mapping.num_ases(),
                  distinct, total);
    }
  }

  std::printf("\nexpected shape: records fall ~k-fold with sampling while "
              "recall degrades\ngracefully; Bloom storage is constant per "
              "window with false positives at\nsmall sizes; AS aggregation "
              "shrinks provenance as nodes_per_as grows (Section 5).\n");
  return 0;
}
