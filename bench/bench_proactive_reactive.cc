// Ablation A4: proactive versus reactive provenance (Section 5).
//
// Proactive: record provenance for every derivation as it happens.
// Reactive: record nothing until an anomaly is declared, then enable
// recording and re-derive (here: re-run the computation). Reactive trades
// recording/storage during normal operation for reconstruction work at
// incident time.

#include <cstdio>

#include "apps/bestpath.h"
#include "apps/programs.h"
#include "util/logging.h"

using namespace provnet;

namespace {

size_t TotalOnlineRecords(Engine& engine) {
  size_t total = 0;
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    total += engine.node(n).online_store().size();
  }
  return total;
}

size_t TotalOfflineBytes(Engine& engine) {
  size_t total = 0;
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    total += engine.node(n).offline_store().ApproxBytes();
  }
  return total;
}

}  // namespace

int main() {
  std::printf("=== Ablation A4: proactive vs reactive provenance ===\n\n");
  std::printf("%4s %-10s %10s %12s %14s %12s\n", "N", "mode", "wall(s)",
              "records", "storage(B)", "extra_wall(s)");

  for (size_t n : {10, 20, 40}) {
    Rng rng(77 + n);
    Topology topo = Topology::RingPlusRandom(n, 3, rng);

    // Proactive: recording on from the start.
    {
      EngineOptions opts;
      opts.prov_mode = ProvMode::kPointers;
      opts.record_offline = true;
      auto engine =
          Engine::Create(topo, BestPathNdlogProgram(), opts).value();
      PROVNET_CHECK(engine->InsertLinkFacts().ok());
      RunStats stats = engine->Run().value();
      std::printf("%4zu %-10s %10.3f %12zu %14zu %12s\n", n, "proactive",
                  stats.wall_seconds, TotalOnlineRecords(*engine),
                  TotalOfflineBytes(*engine), "-");
    }

    // Reactive: recording off during normal operation; on anomaly, enable
    // recording and recompute to materialize the lineage.
    {
      EngineOptions opts;
      opts.prov_mode = ProvMode::kPointers;
      opts.record_offline = true;
      opts.recording_enabled = false;
      auto engine =
          Engine::Create(topo, BestPathNdlogProgram(), opts).value();
      PROVNET_CHECK(engine->InsertLinkFacts().ok());
      RunStats normal = engine->Run().value();
      size_t quiet_records = TotalOnlineRecords(*engine);

      // Anomaly detected: flip recording on and rebuild state with
      // provenance this time.
      EngineOptions incident = opts;
      incident.recording_enabled = true;
      auto engine2 =
          Engine::Create(topo, BestPathNdlogProgram(), incident).value();
      PROVNET_CHECK(engine2->InsertLinkFacts().ok());
      RunStats rebuild = engine2->Run().value();

      std::printf("%4zu %-10s %10.3f %12zu %14zu %12.3f\n", n, "reactive",
                  normal.wall_seconds, quiet_records,
                  TotalOfflineBytes(*engine), rebuild.wall_seconds);
    }
  }
  std::printf("\nexpected shape: reactive stores ~0 during normal operation "
              "and runs faster,\nbut pays a full recomputation at incident "
              "time (Section 5).\n");
  return 0;
}
