// Ablation A6 (BDD half): the cost of the condensation substrate — BDD
// construction, canonical absorption, and minimal-cube read-back for the
// derivation shapes recursive network queries produce.

#include <benchmark/benchmark.h>

#include "bdd/bdd.h"
#include "provenance/condense.h"
#include "provenance/prov_expr.h"

namespace provnet {
namespace {

// Chain: v0 * v1 * ... * v{n-1} — a linear route's provenance.
ProvExpr ChainExpr(uint32_t n) {
  ProvExpr e = ProvExpr::One();
  for (uint32_t i = 0; i < n; ++i) e = ProvExpr::Times(e, ProvExpr::Var(i));
  return e;
}

// Diamonds: product of n (v_{2i} + v_{2i+1}) alternatives — multipath
// provenance; 2^n derivations share structure.
ProvExpr DiamondExpr(uint32_t n) {
  ProvExpr e = ProvExpr::One();
  for (uint32_t i = 0; i < n; ++i) {
    e = ProvExpr::Times(
        e, ProvExpr::Plus(ProvExpr::Var(2 * i), ProvExpr::Var(2 * i + 1)));
  }
  return e;
}

// Absorption chain: v0 + v0*v1 + v0*v1*v2 + ... — condenses to <v0>.
ProvExpr AbsorptionExpr(uint32_t n) {
  ProvExpr sum = ProvExpr::Zero();
  ProvExpr prefix = ProvExpr::One();
  for (uint32_t i = 0; i < n; ++i) {
    prefix = ProvExpr::Times(prefix, ProvExpr::Var(i));
    sum = ProvExpr::Plus(sum, prefix);
  }
  return sum;
}

void BM_BddBuildChain(benchmark::State& state) {
  ProvExpr expr = ChainExpr(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    BddManager mgr;
    benchmark::DoNotOptimize(ProvToBdd(expr, mgr));
  }
}
BENCHMARK(BM_BddBuildChain)->Arg(8)->Arg(32)->Arg(128);

void BM_CondenseChain(benchmark::State& state) {
  ProvExpr expr = ChainExpr(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Condense(expr));
  }
}
BENCHMARK(BM_CondenseChain)->Arg(8)->Arg(32)->Arg(128);

void BM_CondenseDiamond(benchmark::State& state) {
  ProvExpr expr = DiamondExpr(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Condense(expr));
  }
}
BENCHMARK(BM_CondenseDiamond)->Arg(4)->Arg(8)->Arg(12);

void BM_CondenseAbsorption(benchmark::State& state) {
  ProvExpr expr = AbsorptionExpr(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    CondensedProv c = Condense(expr);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CondenseAbsorption)->Arg(8)->Arg(32)->Arg(128);

void BM_BddIteDeep(benchmark::State& state) {
  for (auto _ : state) {
    BddManager mgr;
    BddRef f = mgr.True();
    for (uint32_t v = 0; v < static_cast<uint32_t>(state.range(0)); ++v) {
      f = mgr.Ite(mgr.Var(v), f, mgr.Not(f));
    }
    benchmark::DoNotOptimize(mgr.SatCount(f, static_cast<uint32_t>(
                                                 state.range(0))));
  }
}
BENCHMARK(BM_BddIteDeep)->Arg(16)->Arg(64);

}  // namespace
}  // namespace provnet

BENCHMARK_MAIN();
