// Reproduces Figure 3: query completion time (s) of the Best-Path query
// versus number of nodes, for NDLog / SeNDLog / SeNDLogProv.
//
// Absolute values differ from the paper (its testbed ran 100 P2 OS
// processes with OpenSSL on 2008 hardware); the claims under reproduction
// are the *shape*: all three curves grow superlinearly, SeNDLog sits above
// NDLog (per-tuple signing), SeNDLogProv sits above SeNDLog (condensed
// provenance), and the relative overheads shrink as N grows.

#include <cstdio>

#include "figure_common.h"

int main() {
  using provnet::bench::ConfigFromEnv;
  using provnet::bench::RunSweep;
  using provnet::bench::SweepPoint;

  auto cfg = ConfigFromEnv();
  std::printf("=== Figure 3: Best-Path query completion time (s) ===\n");
  std::printf("workload: random graph, mean out-degree %zu, %zu run(s) per "
              "point\n\n",
              cfg.outdegree, cfg.runs);
  std::vector<SweepPoint> points = RunSweep(cfg);

  std::printf("%8s %12s %12s %14s %10s %10s\n", "N", "NDLog(s)", "SeNDLog(s)",
              "SeNDLogProv(s)", "auth_ovh", "prov_ovh");
  for (const SweepPoint& p : points) {
    std::printf("%8zu %12.3f %12.3f %14.3f %9.0f%% %9.0f%%\n", p.n,
                p.wall_seconds[0], p.wall_seconds[1], p.wall_seconds[2],
                100.0 * (p.wall_seconds[1] / p.wall_seconds[0] - 1.0),
                100.0 * (p.wall_seconds[2] / p.wall_seconds[1] - 1.0));
  }
  provnet::bench::PrintOverheadSummary(points, /*use_time=*/true);
  return 0;
}
