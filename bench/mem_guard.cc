// mem_guard: the CI memory-regression tripwire.
//
// Runs a fixed guard fixture — 50-node ring+random Best-Path at one thread,
// fixed seed — with per-subsystem memory accounting enabled, and compares
// the accounted total peak (obs::MemAccounting::TotalPeakBytes) against the
// checked-in baseline. The accounted total is deterministic at one thread
// (allocation order is canonical), unlike process RSS, so the guard has no
// flake margin to eat: a >20% growth over baseline fails the build and
// forces the regression (or a deliberate baseline bump) into review.
//
// Two fixtures cover the two memory regimes:
//   condensed — the lean path (prov_annotations dominates);
//   full      — the durable-store path (ISSUE 9): the derivation arena and
//               offline-archive pages carry the footprint, so regressions
//               in prov_arena / archive_pages trip here.
//
// Usage:
//   mem_guard [--fixture condensed|full] [--baseline PATH]
//             [--write-baseline] [--tolerance PCT]
//
//   --fixture NAME    guard fixture (default condensed)
//   --baseline PATH   baseline JSON (default bench/baselines/
//                     MEM_fixpoint_50_<fixture>.json, i.e. run from the
//                     repo root)
//   --write-baseline  write the measured numbers to the baseline path and
//                     exit 0 (how the baseline gets bumped deliberately)
//   --tolerance PCT   allowed growth in percent (default 20)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "obs/export.h"
#include "obs/mem.h"
#include "util/logging.h"

using namespace provnet;

namespace {

constexpr size_t kNodes = 50;
constexpr uint64_t kSeed = 20080407;

struct Measurement {
  uint64_t total_peak_bytes = 0;
  uint64_t per_subsystem[obs::kNumMemSubsystems] = {};
};

Result<Measurement> RunGuardFixture(bool full) {
  obs::MemAccounting& mem = obs::MemAccounting::Global();
  mem.Reset();
  mem.Enable();

  Rng rng(kSeed + kNodes);
  Topology topo = Topology::RingPlusRandom(kNodes, /*outdegree=*/3, rng);
  EngineOptions opts;
  opts.seed = kSeed;
  opts.prov_mode = full ? ProvMode::kFull : ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kTuple;
  // The full fixture archives offline records (memory-resident pages), so
  // the archive_pages subsystem is part of what the guard watches.
  opts.record_offline = full;
  opts.threads = 1;
  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathNdlogProgram(), opts));
  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_RETURN_IF_ERROR(engine->Run().status());

  Measurement m;
  m.total_peak_bytes = mem.TotalPeakBytes();
  for (size_t i = 0; i < obs::kNumMemSubsystems; ++i) {
    m.per_subsystem[i] = mem.PeakBytes(static_cast<obs::MemSubsystem>(i));
  }
  return m;
}

std::string MeasurementJson(const Measurement& m, const std::string& fixture) {
  obs::JsonWriter w;
  w.BeginObject()
      .Field("fixture", "fixpoint_50_" + fixture + "_t1")
      .Field("seed", kSeed)
      .Field("total_peak_bytes", m.total_peak_bytes);
  w.Key("peak_bytes").BeginObject();
  for (size_t i = 0; i < obs::kNumMemSubsystems; ++i) {
    w.Field(obs::MemSubsystemName(static_cast<obs::MemSubsystem>(i)),
            m.per_subsystem[i]);
  }
  w.EndObject().EndObject();
  return w.Take() + "\n";
}

// Minimal field extraction: the baseline is machine-written by
// --write-baseline, so "  \"total_peak_bytes\": N" appears verbatim.
bool ParseBaselineTotal(const std::string& body, uint64_t* out) {
  const std::string key = "\"total_peak_bytes\": ";
  size_t pos = body.find(key);
  if (pos == std::string::npos) return false;
  *out = std::strtoull(body.c_str() + pos + key.size(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fixture = "condensed";
  std::string baseline_path;
  bool write_baseline = false;
  double tolerance_pct = 20.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fixture") == 0 && i + 1 < argc) {
      fixture = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      write_baseline = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--fixture condensed|full] [--baseline PATH] "
                   "[--write-baseline] [--tolerance PCT]\n",
                   argv[0]);
      return 2;
    }
  }
  if (fixture != "condensed" && fixture != "full") {
    std::fprintf(stderr, "mem_guard: unknown fixture '%s'\n", fixture.c_str());
    return 2;
  }
  if (baseline_path.empty()) {
    baseline_path = "bench/baselines/MEM_fixpoint_50_" + fixture + ".json";
  }

  Result<Measurement> measured = RunGuardFixture(fixture == "full");
  if (!measured.ok()) {
    std::fprintf(stderr, "mem_guard fixture failed: %s\n",
                 measured.status().ToString().c_str());
    return 1;
  }
  const Measurement& m = measured.value();
  std::printf("mem_guard: fixture n=%zu %s threads=1 "
              "total_peak_bytes=%llu\n",
              kNodes, fixture.c_str(), (unsigned long long)m.total_peak_bytes);
  for (size_t i = 0; i < obs::kNumMemSubsystems; ++i) {
    if (m.per_subsystem[i] == 0) continue;
    std::printf("  %-18s %llu\n",
                obs::MemSubsystemName(static_cast<obs::MemSubsystem>(i)),
                (unsigned long long)m.per_subsystem[i]);
  }

  if (write_baseline) {
    FILE* f = std::fopen(baseline_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   baseline_path.c_str());
      return 1;
    }
    std::string body = MeasurementJson(m, fixture);
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote baseline %s\n", baseline_path.c_str());
    return 0;
  }

  FILE* f = std::fopen(baseline_path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "mem_guard: no baseline at %s (run with --write-baseline)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::string body;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, got);
  std::fclose(f);

  uint64_t baseline = 0;
  if (!ParseBaselineTotal(body, &baseline) || baseline == 0) {
    std::fprintf(stderr, "mem_guard: malformed baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }

  double growth_pct =
      100.0 * (double(m.total_peak_bytes) - double(baseline)) /
      double(baseline);
  std::printf("mem_guard: baseline=%llu measured=%llu growth=%+.2f%% "
              "(tolerance %.0f%%)\n",
              (unsigned long long)baseline,
              (unsigned long long)m.total_peak_bytes, growth_pct,
              tolerance_pct);
  if (growth_pct > tolerance_pct) {
    std::fprintf(stderr,
                 "mem_guard: FAIL — accounted peak grew %.2f%% over the "
                 "checked-in baseline (limit %.0f%%). If the growth is "
                 "intentional, refresh the baseline with --write-baseline "
                 "and commit it.\n",
                 growth_pct, tolerance_pct);
    return 1;
  }
  std::printf("mem_guard: OK\n");
  return 0;
}
