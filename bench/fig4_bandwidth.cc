// Reproduces Figure 4: total bandwidth (MB) across all nodes for the
// Best-Path query versus number of nodes, for NDLog / SeNDLog / SeNDLogProv.
//
// Bandwidth here is exact: every byte enqueued on the simulated wire is
// counted, decomposed into tuple payload, says authentication tags, and
// condensed-provenance annotations.

#include <cstdio>

#include "figure_common.h"

int main() {
  using provnet::bench::ConfigFromEnv;
  using provnet::bench::RunSweep;
  using provnet::bench::SweepPoint;

  auto cfg = ConfigFromEnv();
  std::printf("=== Figure 4: Best-Path bandwidth utilization (MB) ===\n");
  std::printf("workload: random graph, mean out-degree %zu, %zu run(s) per "
              "point\n\n",
              cfg.outdegree, cfg.runs);
  std::vector<SweepPoint> points = RunSweep(cfg);

  std::printf("%8s %12s %12s %15s %10s %10s\n", "N", "NDLog(MB)",
              "SeNDLog(MB)", "SeNDLogProv(MB)", "auth_ovh", "prov_ovh");
  for (const SweepPoint& p : points) {
    std::printf("%8zu %12.3f %12.3f %15.3f %9.0f%% %9.0f%%\n", p.n,
                p.megabytes[0], p.megabytes[1], p.megabytes[2],
                100.0 * (p.megabytes[1] / p.megabytes[0] - 1.0),
                100.0 * (p.megabytes[2] / p.megabytes[1] - 1.0));
  }
  provnet::bench::PrintOverheadSummary(points, /*use_time=*/false);
  return 0;
}
