#include <gtest/gtest.h>

#include "bignum/bigint.h"
#include "util/random.h"

namespace provnet {
namespace {

BigInt Dec(const std::string& s) {
  Result<BigInt> r = BigInt::FromDecimal(s);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(BigIntTest, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToDecimal(), "0");
  EXPECT_EQ(z.ToHex(), "0");
}

TEST(BigIntTest, Int64Construction) {
  EXPECT_EQ(BigInt(0).ToDecimal(), "0");
  EXPECT_EQ(BigInt(1).ToDecimal(), "1");
  EXPECT_EQ(BigInt(-1).ToDecimal(), "-1");
  EXPECT_EQ(BigInt(INT64_MAX).ToDecimal(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToDecimal(), "-9223372036854775808");
}

TEST(BigIntTest, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "-1", "4294967296", "18446744073709551616",
                         "123456789012345678901234567890"};
  for (const char* c : cases) {
    EXPECT_EQ(Dec(c).ToDecimal(), c);
  }
}

TEST(BigIntTest, DecimalParseErrors) {
  EXPECT_FALSE(BigInt::FromDecimal("").ok());
  EXPECT_FALSE(BigInt::FromDecimal("-").ok());
  EXPECT_FALSE(BigInt::FromDecimal("12x").ok());
}

TEST(BigIntTest, HexRoundTrip) {
  EXPECT_EQ(BigInt::FromHex("ff").value().ToDecimal(), "255");
  EXPECT_EQ(BigInt::FromHex("DEADBEEF").value().ToHex(), "deadbeef");
  EXPECT_EQ(Dec("255").ToHex(), "ff");
  EXPECT_FALSE(BigInt::FromHex("xyz").ok());
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes raw = {0x01, 0x02, 0x03, 0x04, 0x05};
  BigInt v = BigInt::FromBytes(raw);
  EXPECT_EQ(v.ToBytes(), raw);
  EXPECT_EQ(v.ToHex(), "102030405");
  EXPECT_TRUE(BigInt::FromBytes({}).IsZero());
  EXPECT_EQ(BigInt().ToBytes(), Bytes{});
}

TEST(BigIntTest, PaddedBytes) {
  BigInt v(0xABCD);
  Bytes padded = v.ToBytesPadded(4).value();
  EXPECT_EQ(padded, Bytes({0x00, 0x00, 0xAB, 0xCD}));
  EXPECT_FALSE(v.ToBytesPadded(1).ok());
}

TEST(BigIntTest, AdditionCarries) {
  BigInt a = Dec("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).ToDecimal(), "4294967296");
  EXPECT_EQ((a + a).ToDecimal(), "8589934590");
}

TEST(BigIntTest, SignedAddSub) {
  EXPECT_EQ((BigInt(5) + BigInt(-7)).ToDecimal(), "-2");
  EXPECT_EQ((BigInt(-5) + BigInt(7)).ToDecimal(), "2");
  EXPECT_EQ((BigInt(-5) - BigInt(7)).ToDecimal(), "-12");
  EXPECT_EQ((BigInt(5) - BigInt(5)).ToDecimal(), "0");
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt a = Dec("123456789012345678901234567890");
  BigInt b = Dec("987654321098765432109876543210");
  EXPECT_EQ((a * b).ToDecimal(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ((BigInt(-3) * BigInt(4)).ToDecimal(), "-12");
  EXPECT_EQ((BigInt(-3) * BigInt(-4)).ToDecimal(), "12");
  EXPECT_EQ((BigInt(0) * BigInt(-4)).ToDecimal(), "0");
}

TEST(BigIntTest, DivModSmall) {
  auto dm = BigInt(17).DivMod(BigInt(5)).value();
  EXPECT_EQ(dm.quotient.ToDecimal(), "3");
  EXPECT_EQ(dm.remainder.ToDecimal(), "2");
}

TEST(BigIntTest, DivModTruncatesTowardZero) {
  auto dm = BigInt(-17).DivMod(BigInt(5)).value();
  EXPECT_EQ(dm.quotient.ToDecimal(), "-3");
  EXPECT_EQ(dm.remainder.ToDecimal(), "-2");
  dm = BigInt(17).DivMod(BigInt(-5)).value();
  EXPECT_EQ(dm.quotient.ToDecimal(), "-3");
  EXPECT_EQ(dm.remainder.ToDecimal(), "2");
}

TEST(BigIntTest, DivByZeroFails) {
  EXPECT_FALSE(BigInt(1).DivMod(BigInt()).ok());
  EXPECT_FALSE(BigInt(1).Mod(BigInt()).ok());
}

TEST(BigIntTest, DivModLargeKnuth) {
  BigInt a = Dec("121932631137021795226185032733622923332237463801111263526900");
  BigInt b = Dec("987654321098765432109876543210");
  auto dm = a.DivMod(b).value();
  EXPECT_EQ(dm.quotient.ToDecimal(), "123456789012345678901234567890");
  EXPECT_TRUE(dm.remainder.IsZero());

  BigInt c = a + BigInt(12345);
  dm = c.DivMod(b).value();
  EXPECT_EQ(dm.quotient.ToDecimal(), "123456789012345678901234567890");
  EXPECT_EQ(dm.remainder.ToDecimal(), "12345");
}

TEST(BigIntTest, DivModRandomizedInvariant) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::RandomWithBits(1 + rng.NextBelow(256), rng);
    BigInt b = BigInt::RandomWithBits(1 + rng.NextBelow(128), rng);
    auto dm = a.DivMod(b).value();
    EXPECT_EQ((dm.quotient * b + dm.remainder).ToDecimal(), a.ToDecimal());
    EXPECT_LT(dm.remainder.CompareMagnitude(b), 0);
  }
}

TEST(BigIntTest, ModIsEuclidean) {
  EXPECT_EQ(BigInt(-17).Mod(BigInt(5)).value().ToDecimal(), "3");
  EXPECT_EQ(BigInt(17).Mod(BigInt(5)).value().ToDecimal(), "2");
}

TEST(BigIntTest, Shifts) {
  EXPECT_EQ(BigInt(1).ShiftLeft(100).ToHex(),
            "10000000000000000000000000");
  BigInt v = Dec("123456789012345678901234567890");
  EXPECT_EQ(v.ShiftLeft(37).ShiftRight(37).ToDecimal(), v.ToDecimal());
  EXPECT_EQ(BigInt(255).ShiftRight(8).ToDecimal(), "0");
  EXPECT_EQ(BigInt(256).ShiftRight(8).ToDecimal(), "1");
}

TEST(BigIntTest, BitAccess) {
  BigInt v(0b1011);
  EXPECT_TRUE(v.GetBit(0));
  EXPECT_TRUE(v.GetBit(1));
  EXPECT_FALSE(v.GetBit(2));
  EXPECT_TRUE(v.GetBit(3));
  EXPECT_FALSE(v.GetBit(64));
  EXPECT_EQ(v.BitLength(), 4u);
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-2), BigInt(1));
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_GT(Dec("18446744073709551616"), Dec("18446744073709551615"));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigIntTest, ModExpSmallKnown) {
  // 4^13 mod 497 = 445 (classic example).
  EXPECT_EQ(BigInt(4).ModExp(BigInt(13), BigInt(497)).value().ToDecimal(),
            "445");
  // Exponent zero.
  EXPECT_EQ(BigInt(9).ModExp(BigInt(0), BigInt(7)).value().ToDecimal(), "1");
  // Modulus one.
  EXPECT_EQ(BigInt(9).ModExp(BigInt(5), BigInt(1)).value().ToDecimal(), "0");
}

TEST(BigIntTest, ModExpFermat) {
  // a^(p-1) ≡ 1 mod p for prime p not dividing a.
  BigInt p = Dec("1000000007");
  for (int64_t a : {2, 3, 999999999}) {
    EXPECT_EQ(BigInt(a).ModExp(p - BigInt(1), p).value().ToDecimal(), "1");
  }
}

TEST(BigIntTest, ModExpMontgomeryMatchesGeneric) {
  // Cross-check the Montgomery path (odd modulus) against the generic path
  // (even modulus) via n and 2n.
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    BigInt base = BigInt::RandomWithBits(96, rng);
    BigInt exp = BigInt::RandomWithBits(32, rng);
    BigInt modulus = BigInt::RandomWithBits(64, rng);
    if (modulus.IsEven()) modulus = modulus + BigInt(1);
    BigInt via_mont = base.ModExp(exp, modulus).value();
    // Compute the same thing with repeated multiplication mod modulus.
    BigInt acc(1);
    BigInt b = base.Mod(modulus).value();
    for (size_t bit = exp.BitLength(); bit > 0; --bit) {
      acc = (acc * acc).Mod(modulus).value();
      if (exp.GetBit(bit - 1)) acc = (acc * b).Mod(modulus).value();
    }
    EXPECT_EQ(via_mont.ToDecimal(), acc.ToDecimal());
  }
}

TEST(BigIntTest, ModExpEvenModulus) {
  EXPECT_EQ(BigInt(3).ModExp(BigInt(4), BigInt(100)).value().ToDecimal(),
            "81");
  EXPECT_EQ(BigInt(7).ModExp(BigInt(3), BigInt(10)).value().ToDecimal(), "3");
}

TEST(BigIntTest, ModExpRejectsBadInput) {
  EXPECT_FALSE(BigInt(2).ModExp(BigInt(-1), BigInt(5)).ok());
  EXPECT_FALSE(BigInt(2).ModExp(BigInt(3), BigInt(0)).ok());
  EXPECT_FALSE(BigInt(2).ModExp(BigInt(3), BigInt(-5)).ok());
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(18)).ToDecimal(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToDecimal(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(-48), BigInt(18)).ToDecimal(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToDecimal(), "1");
}

TEST(BigIntTest, ModInverse) {
  BigInt inv = BigInt(3).ModInverse(BigInt(11)).value();
  EXPECT_EQ(inv.ToDecimal(), "4");  // 3*4 = 12 ≡ 1 mod 11
  EXPECT_FALSE(BigInt(6).ModInverse(BigInt(9)).ok());  // gcd 3
}

TEST(BigIntTest, ModInverseRandomized) {
  Rng rng(5);
  BigInt p = Dec("1000000007");
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBelow(p - BigInt(1), rng) + BigInt(1);
    BigInt inv = a.ModInverse(p).value();
    EXPECT_EQ((a * inv).Mod(p).value().ToDecimal(), "1");
  }
}

TEST(BigIntTest, RandomBelowBound) {
  Rng rng(21);
  BigInt bound = Dec("1000000000000");
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::RandomBelow(bound, rng);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.IsNegative());
  }
}

TEST(BigIntTest, RandomWithBitsExact) {
  Rng rng(33);
  for (size_t bits : {1u, 8u, 31u, 32u, 33u, 100u}) {
    BigInt v = BigInt::RandomWithBits(bits, rng);
    EXPECT_EQ(v.BitLength(), bits);
  }
}

TEST(BigIntTest, PrimalityKnownPrimes) {
  Rng rng(1);
  const char* primes[] = {"2", "3", "17", "251", "257", "65537",
                          "1000000007", "170141183460469231731687303715884105727"};
  for (const char* p : primes) {
    EXPECT_TRUE(BigInt::IsProbablePrime(Dec(p), 20, rng)) << p;
  }
}

TEST(BigIntTest, PrimalityKnownComposites) {
  Rng rng(2);
  // Includes Carmichael numbers 561, 1105, 41041.
  const char* composites[] = {"1", "4", "100", "561", "1105", "41041",
                              "1000000008",
                              "170141183460469231731687303715884105725"};
  for (const char* c : composites) {
    EXPECT_FALSE(BigInt::IsProbablePrime(Dec(c), 20, rng)) << c;
  }
}

TEST(BigIntTest, GeneratePrimeHasRequestedSize) {
  Rng rng(77);
  BigInt p = BigInt::GeneratePrime(96, rng);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(BigInt::IsProbablePrime(p, 20, rng));
}

class BigIntArithmeticSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(BigIntArithmeticSweep, MatchesInt64Semantics) {
  int64_t a = GetParam();
  const int64_t others[] = {-7, -1, 1, 2, 13, 1000003};
  for (int64_t b : others) {
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToDecimal(), std::to_string(a + b));
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToDecimal(), std::to_string(a - b));
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToDecimal(), std::to_string(a * b));
    auto dm = BigInt(a).DivMod(BigInt(b)).value();
    EXPECT_EQ(dm.quotient.ToDecimal(), std::to_string(a / b));
    EXPECT_EQ(dm.remainder.ToDecimal(), std::to_string(a % b));
  }
}

INSTANTIATE_TEST_SUITE_P(Int64Cases, BigIntArithmeticSweep,
                         ::testing::Values(-1000000, -12345, -8, -1, 0, 1, 9,
                                           12345, 99999999, 4294967296LL));

}  // namespace
}  // namespace provnet
