#include <gtest/gtest.h>

#include "apps/accountability.h"
#include "apps/bestpath.h"
#include "apps/diagnostics.h"
#include "apps/forensics.h"
#include "apps/programs.h"
#include "apps/trust.h"

namespace provnet {
namespace {

// Shared fixture: diamond network a->b->d, a->c->d with reachability and
// condensed provenance (reachable(a,d) has two independent witness sets).
class DiamondFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Topology topo;
    topo.num_nodes = 4;
    topo.edges = {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}};
    EngineOptions opts;
    opts.authenticate = true;
    opts.says_level = SaysLevel::kHmac;
    opts.prov_mode = ProvMode::kCondensed;
    opts.record_online = true;
    opts.record_offline = true;
    opts.node_names = {"a", "b", "c", "d"};
    engine_ = Engine::Create(topo, ReachableSendlogProgram(), opts).value();
    for (const TopoEdge& e : topo.edges) {
      ASSERT_TRUE(engine_
                      ->InsertFact(e.from, Tuple("link",
                                                 {Value::Address(e.from),
                                                  Value::Address(e.to)}))
                      .ok());
    }
    ASSERT_TRUE(engine_->Run().ok());
  }

  Tuple ReachAd() {
    return Tuple("reachable", {Value::Address(0), Value::Address(3)});
  }

  std::unique_ptr<Engine> engine_;
};

// --- Trust -----------------------------------------------------------------------

TEST_F(DiamondFixture, DiamondHasTwoWitnessSets) {
  CondensedProv cond = engine_->CondensedOf(0, ReachAd()).value();
  EXPECT_EQ(cond.VoteCount(), 2u);
  auto name = [&](ProvVar v) { return engine_->VarName(v); };
  EXPECT_EQ(cond.ToString(name), "<a*b + a*c>");
}

TEST_F(DiamondFixture, SourceOriginFiltering) {
  TrustPolicy policy(engine_.get());
  policy.TrustPrincipal("a");
  policy.TrustPrincipal("b");
  // Trusting {a, b} satisfies the a*b witness set.
  EXPECT_TRUE(policy.AcceptsTuple(0, ReachAd()).value());
  policy.DistrustPrincipal("b");
  // Only a left: neither a*b nor a*c holds.
  EXPECT_FALSE(policy.AcceptsTuple(0, ReachAd()).value());
  policy.TrustPrincipal("c");
  EXPECT_TRUE(policy.AcceptsTuple(0, ReachAd()).value());
}

TEST_F(DiamondFixture, SecurityLevels) {
  TrustPolicy policy(engine_.get());
  policy.SetSecurityLevel("a", 3);
  policy.SetSecurityLevel("b", 1);
  policy.SetSecurityLevel("c", 2);
  // max(min(3,1), min(3,2)) = 2.
  EXPECT_EQ(policy.TrustLevelOfTuple(0, ReachAd(), 0).value(), 2);
  // Upgrading b to 5: max(min(3,5), min(3,2)) = 3.
  policy.SetSecurityLevel("b", 5);
  EXPECT_EQ(policy.TrustLevelOfTuple(0, ReachAd(), 0).value(), 3);
}

TEST_F(DiamondFixture, VoteThresholds) {
  TrustPolicy policy(engine_.get());
  EXPECT_TRUE(policy.AcceptsByVote(0, ReachAd(), 1).value());
  EXPECT_TRUE(policy.AcceptsByVote(0, ReachAd(), 2).value());
  EXPECT_FALSE(policy.AcceptsByVote(0, ReachAd(), 3).value());
  // The one-hop tuple has a single witness set.
  Tuple reach_ab("reachable", {Value::Address(0), Value::Address(1)});
  EXPECT_FALSE(policy.AcceptsByVote(0, reach_ab, 2).value());
}

TEST_F(DiamondFixture, FilterTablePartitions) {
  TrustPolicy policy(engine_.get());
  policy.TrustPrincipal("a");
  auto result = policy.FilterTable(0, "reachable").value();
  // reachable(a,b), reachable(a,c) have provenance <a>; reachable(a,d)
  // needs a transit principal.
  EXPECT_EQ(result.accepted.size(), 2u);
  EXPECT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0], ReachAd());
}

// --- Forensics -------------------------------------------------------------------

TEST_F(DiamondFixture, TracebackFindsBothBranches) {
  TracebackReport report = Traceback(*engine_, 0, ReachAd()).value();
  // Origins: links asserted at a, b, and c.
  EXPECT_TRUE(report.origin_nodes.count(0));
  EXPECT_TRUE(report.origin_nodes.count(1));
  EXPECT_TRUE(report.origin_nodes.count(2));
  EXPECT_GT(report.query_messages, 0u);
  EXPECT_GT(report.query_bytes, 0u);
  EXPECT_GE(report.origin_tuples.size(), 3u);  // link(a,b), link(b,d)... etc
}

TEST_F(DiamondFixture, TracebackRecallMetric) {
  TracebackReport report = Traceback(*engine_, 0, ReachAd()).value();
  EXPECT_DOUBLE_EQ(TracebackRecall(report, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(TracebackRecall(report, {0, 3}), 0.5);
  EXPECT_DOUBLE_EQ(TracebackRecall(report, {}), 1.0);
}

TEST_F(DiamondFixture, TracebackUnknownTupleFails) {
  Tuple bogus("reachable", {Value::Address(3), Value::Address(0)});
  EXPECT_FALSE(Traceback(*engine_, 0, bogus).ok());
}

TEST_F(DiamondFixture, MoonwalkTerminatesAtOrigins) {
  Rng rng(5);
  auto histogram = RandomMoonwalk(*engine_, 0, ReachAd(), 100, rng).value();
  size_t total = 0;
  for (const auto& [node, count] : histogram) total += count;
  EXPECT_EQ(total, 100u);
  // Every walk ends at a node that holds base records (0, 1, or 2).
  for (const auto& [node, count] : histogram) {
    EXPECT_LT(node, 3u) << "walk ended at non-origin " << node;
  }
}

TEST_F(DiamondFixture, DigestTracebackFlagsHolders) {
  DigestTraceback digests(*engine_, 1.0, 4096, 4);
  std::vector<NodeId> flagged =
      digests.NodesThatMaySawTuple(ReachAd(), 0.0, 1e9);
  // reachable(a,d) is recorded at node a (storage) and the deriving senders.
  EXPECT_FALSE(flagged.empty());
  bool node0 = false;
  for (NodeId n : flagged) node0 |= n == 0;
  EXPECT_TRUE(node0);
  EXPECT_GT(digests.TotalBytes(), 0u);
}

// --- Accountability ----------------------------------------------------------------

TEST_F(DiamondFixture, AuditorLedgersAllPrincipals) {
  FlowAuditor auditor(*engine_, 0.0, 1e9);
  const auto& ledger = auditor.ledger();
  // Every link-owning node asserted derivations.
  EXPECT_TRUE(ledger.count("a"));
  EXPECT_TRUE(ledger.count("b"));
  EXPECT_TRUE(ledger.count("c"));
  EXPECT_GT(auditor.TotalAssertions(), 0u);
  // a asserts the most (two links + local derivations).
  EXPECT_GE(ledger.at("a").assertions, ledger.at("c").assertions);
  EXPECT_FALSE(auditor.ToString().empty());
}

TEST_F(DiamondFixture, OverQuotaFlagsHeavyUsers) {
  FlowAuditor auditor(*engine_, 0.0, 1e9);
  std::vector<Principal> all = auditor.OverQuota(0);
  EXPECT_GE(all.size(), 3u);
  std::vector<Principal> none = auditor.OverQuota(1000000);
  EXPECT_TRUE(none.empty());
}

TEST_F(DiamondFixture, WindowRestrictsLedger) {
  FlowAuditor auditor(*engine_, 1e8, 1e9);  // far future: nothing
  EXPECT_EQ(auditor.TotalAssertions(), 0u);
}

// --- Diagnostics ---------------------------------------------------------------------

TEST(DiagnosticsTest, FlapMonitorRaisesAlarm) {
  Rng rng(11);
  Topology topo = Topology::RingPlusRandom(8, 3, rng);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kPointers;
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  RouteFlapMonitor monitor(engine.get(), "bestPath", {0, 1}, 60.0, 3);
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());
  size_t baseline_alarms = monitor.alarms().size();

  // Flap one link cost back and forth.
  for (int round = 0; round < 8; ++round) {
    Tuple link("link", {Value::Address(0), Value::Address(1),
                        Value::Int(round % 2 == 0 ? 40 : 1)});
    ASSERT_TRUE(engine->InsertFact(0, link).ok());
    ASSERT_TRUE(engine->Run().ok());
  }
  EXPECT_GT(monitor.alarms().size(), baseline_alarms);
  EXPECT_GT(monitor.total_changes(), 0u);
}

TEST(DiagnosticsTest, SuspectPrincipalsIncludeFlapper) {
  Rng rng(13);
  Topology topo = Topology::RingPlusRandom(8, 3, rng);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kPointers;
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  RouteFlapMonitor monitor(engine.get(), "bestPath", {0, 1}, 60.0, 2);
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());
  for (int round = 0; round < 8; ++round) {
    Tuple link("link", {Value::Address(1), Value::Address(2),
                        Value::Int(round % 2 == 0 ? 40 : 1)});
    ASSERT_TRUE(engine->InsertFact(1, link).ok());
    ASSERT_TRUE(engine->Run().ok());
  }
  ASSERT_FALSE(monitor.alarms().empty());
  bool found_flapper = false;
  for (const FlapAlarm& alarm : monitor.alarms()) {
    auto suspects = monitor.SuspectPrincipals(alarm);
    if (!suspects.ok()) continue;
    for (const Principal& p : suspects.value()) {
      if (p == "n1") found_flapper = true;
    }
  }
  EXPECT_TRUE(found_flapper);
}

// --- Best-path oracle ------------------------------------------------------------------

TEST(BestPathOracleTest, FloydWarshallOnKnownGraph) {
  Topology topo;
  topo.num_nodes = 4;
  topo.edges = {{0, 1, 2}, {1, 2, 3}, {0, 2, 10}, {2, 3, 1}};
  auto dist = ReferenceShortestPaths(topo);
  EXPECT_EQ(dist.at({0, 1}), 2);
  EXPECT_EQ(dist.at({0, 2}), 5);   // via 1
  EXPECT_EQ(dist.at({0, 3}), 6);
  EXPECT_EQ(dist.count({1, 0}), 0u);  // unreachable
  EXPECT_EQ(dist.count({0, 0}), 0u);  // self excluded
}

TEST(BestPathOracleTest, VariantNamesAndOptions) {
  EXPECT_STREQ(VariantName(Variant::kNdlog), "NDLog");
  EXPECT_STREQ(VariantName(Variant::kSendlog), "SeNDLog");
  EXPECT_STREQ(VariantName(Variant::kSendlogProv), "SeNDLogProv");
  EngineOptions opts = OptionsForVariant(Variant::kSendlogProv, {});
  EXPECT_TRUE(opts.authenticate);
  EXPECT_EQ(opts.prov_mode, ProvMode::kCondensed);
  opts = OptionsForVariant(Variant::kNdlog, {});
  EXPECT_FALSE(opts.authenticate);
  EXPECT_EQ(opts.prov_mode, ProvMode::kNone);
}

}  // namespace
}  // namespace provnet
