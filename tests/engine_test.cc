#include <gtest/gtest.h>

#include "apps/bestpath.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"

namespace provnet {
namespace {

Tuple Link2(NodeId a, NodeId b) {
  return Tuple("link", {Value::Address(a), Value::Address(b)});
}

Tuple Reach(NodeId a, NodeId b) {
  return Tuple("reachable", {Value::Address(a), Value::Address(b)});
}

std::unique_ptr<Engine> MakeReachEngine(const std::string& source,
                                        EngineOptions opts,
                                        const Topology& topo) {
  Result<std::unique_ptr<Engine>> engine = Engine::Create(topo, source, opts);
  EXPECT_TRUE(engine.ok()) << engine.status();
  std::unique_ptr<Engine> e = std::move(engine).value();
  for (const TopoEdge& edge : topo.edges) {
    EXPECT_TRUE(e->InsertFact(edge.from, Link2(edge.from, edge.to)).ok());
  }
  return e;
}

// --- Section 2.1: NDlog reachable on the Figure 1 network ------------------

TEST(EngineTest, NdlogReachableFigureAbc) {
  Topology topo = Topology::FigureAbc();  // a->b, a->c, b->c
  std::unique_ptr<Engine> e =
      MakeReachEngine(ReachableNdlogProgram(), EngineOptions{}, topo);
  Result<RunStats> stats = e->Run();
  ASSERT_TRUE(stats.ok()) << stats.status();

  EXPECT_EQ(e->TuplesAt(0, "reachable"),
            (std::vector<Tuple>{Reach(0, 1), Reach(0, 2)}));
  EXPECT_EQ(e->TuplesAt(1, "reachable"), (std::vector<Tuple>{Reach(1, 2)}));
  EXPECT_TRUE(e->TuplesAt(2, "reachable").empty());
}

TEST(EngineTest, NdlogReachableLineIsTransitive) {
  Topology topo = Topology::Line(5);  // 0->1->2->3->4
  std::unique_ptr<Engine> e =
      MakeReachEngine(ReachableNdlogProgram(), EngineOptions{}, topo);
  ASSERT_TRUE(e->Run().ok());
  // Node 0 reaches everyone downstream.
  EXPECT_EQ(e->TuplesAt(0, "reachable").size(), 4u);
  EXPECT_EQ(e->TuplesAt(3, "reachable").size(), 1u);
  EXPECT_TRUE(e->TuplesAt(4, "reachable").empty());
}

TEST(EngineTest, NdlogReachableHandlesCycles) {
  // 0 -> 1 -> 2 -> 0: everyone reaches everyone (including themselves).
  Topology topo;
  topo.num_nodes = 3;
  topo.edges = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}};
  std::unique_ptr<Engine> e =
      MakeReachEngine(ReachableNdlogProgram(), EngineOptions{}, topo);
  ASSERT_TRUE(e->Run().ok());
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(e->TuplesAt(n, "reachable").size(), 3u) << "node " << n;
  }
}

// --- Section 2.2: SeNDlog reachable with says ------------------------------

TEST(EngineTest, SendlogReachableMatchesNdlog) {
  Topology topo = Topology::FigureAbc();
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;  // cheap auth for tests
  std::unique_ptr<Engine> e =
      MakeReachEngine(ReachableSendlogProgram(), opts, topo);
  Result<RunStats> stats = e->Run();
  ASSERT_TRUE(stats.ok()) << stats.status();

  EXPECT_EQ(e->TuplesAt(0, "reachable"),
            (std::vector<Tuple>{Reach(0, 1), Reach(0, 2)}));
  EXPECT_EQ(e->TuplesAt(1, "reachable"), (std::vector<Tuple>{Reach(1, 2)}));
  EXPECT_GT(stats.value().signs, 0u);
  EXPECT_GT(stats.value().verifies, 0u);
  EXPECT_EQ(stats.value().auth_failures, 0u);
}

TEST(EngineTest, SendlogAuthAddsBandwidth) {
  // Unauthenticated SeNDlog ships a cleartext principal header (the paper's
  // benign world); RSA says upgrades it to a signature.
  Topology topo = Topology::FigureAbc();
  EngineOptions plain;
  std::unique_ptr<Engine> e1 =
      MakeReachEngine(ReachableSendlogProgram(), plain, topo);
  RunStats s1 = e1->Run().value();

  EngineOptions auth;
  auth.authenticate = true;
  auth.says_level = SaysLevel::kRsa;
  std::unique_ptr<Engine> e2 =
      MakeReachEngine(ReachableSendlogProgram(), auth, topo);
  RunStats s2 = e2->Run().value();

  EXPECT_EQ(s1.messages, s2.messages);  // same dataflow
  EXPECT_GT(s2.bytes, s1.bytes);        // signatures cost bytes
  EXPECT_GT(s1.auth_bytes, 0u);         // cleartext header is cheap...
  EXPECT_GT(s2.auth_bytes, 4 * s1.auth_bytes);  // ...signatures are not
  EXPECT_EQ(s1.signs, 0u);  // cleartext says does no crypto
  EXPECT_GT(s2.signs, 0u);
}

// --- Figure 2: condensed provenance <a + a*b> -> <a> ------------------------

TEST(EngineTest, CondensedProvenanceMatchesFigure2) {
  Topology topo = Topology::FigureAbc();
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kCondensed;
  opts.node_names = {"a", "b", "c"};
  std::unique_ptr<Engine> e =
      MakeReachEngine(ReachableSendlogProgram(), opts, topo);
  ASSERT_TRUE(e->Run().ok());

  // reachable(a, c) at node a has two derivations: locally from link(a,c)
  // (annotation a) and via b (annotation a*b). Condensed: <a>.
  Result<CondensedProv> cond = e->CondensedOf(0, Reach(0, 2));
  ASSERT_TRUE(cond.ok()) << cond.status();
  std::string rendered =
      cond.value().ToString([&](ProvVar v) { return e->VarName(v); });
  EXPECT_EQ(rendered, "<a>");

  // Before condensation the annotation really has both derivations.
  Result<ProvExpr> full = e->AnnotationOf(0, Reach(0, 2));
  ASSERT_TRUE(full.ok());
  ASSERT_GE(full.value().Variables().size(), 2u);  // mentions a and b

  // reachable(b, c) at b is asserted solely by b.
  Result<CondensedProv> bc = e->CondensedOf(1, Reach(1, 2));
  ASSERT_TRUE(bc.ok());
  EXPECT_EQ(bc.value().ToString([&](ProvVar v) { return e->VarName(v); }),
            "<b>");
}

// --- Best-Path (Section 6 workload) -----------------------------------------

TEST(EngineTest, BestPathFigureAbc) {
  Topology topo = Topology::FigureAbc();
  Result<BestPathRun> run = RunBestPath(topo, Variant::kNdlog);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(VerifyBestPaths(*run.value().engine, topo).ok());

  // a's best path to c is the direct unit-cost link.
  std::vector<Tuple> best = run.value().engine->TuplesAt(0, "bestPath");
  ASSERT_EQ(best.size(), 2u);
}

TEST(EngineTest, BestPathPrefersCheaperTwoHop) {
  // Direct edge cost 10; detour 0->1->2 costs 2.
  Topology topo;
  topo.num_nodes = 3;
  topo.edges = {{0, 2, 10}, {0, 1, 1}, {1, 2, 1}};
  Result<BestPathRun> run = RunBestPath(topo, Variant::kNdlog);
  ASSERT_TRUE(run.ok()) << run.status();
  Engine& e = *run.value().engine;
  EXPECT_TRUE(VerifyBestPaths(e, topo).ok());

  std::vector<Tuple> best = e.TuplesAt(0, "bestPath");
  bool found = false;
  for (const Tuple& t : best) {
    if (t.arg(1).AsAddress() == 2) {
      found = true;
      EXPECT_EQ(t.arg(3).AsInt(), 2);
      EXPECT_EQ(t.arg(2).AsList().size(), 3u);  // 0 -> 1 -> 2
    }
  }
  EXPECT_TRUE(found);
}

class BestPathVariantSweep : public ::testing::TestWithParam<Variant> {};

TEST_P(BestPathVariantSweep, AllVariantsComputeTheSamePaths) {
  Rng rng(424242);
  Topology topo = Topology::RingPlusRandom(8, 3, rng);
  Result<BestPathRun> run = RunBestPath(topo, GetParam());
  ASSERT_TRUE(run.ok()) << run.status();
  Status verified = VerifyBestPaths(*run.value().engine, topo);
  EXPECT_TRUE(verified.ok()) << verified;
}

INSTANTIATE_TEST_SUITE_P(Variants, BestPathVariantSweep,
                         ::testing::Values(Variant::kNdlog, Variant::kSendlog,
                                           Variant::kSendlogProv));

TEST(EngineTest, VariantOverheadOrdering) {
  Rng rng(7);
  Topology topo = Topology::RingPlusRandom(10, 3, rng);
  RunStats ndlog = RunBestPath(topo, Variant::kNdlog).value().stats;
  RunStats sendlog = RunBestPath(topo, Variant::kSendlog).value().stats;
  RunStats prov = RunBestPath(topo, Variant::kSendlogProv).value().stats;

  // Bandwidth strictly grows along the ladder (Figure 4's ordering).
  EXPECT_GT(sendlog.bytes, ndlog.bytes);
  EXPECT_GT(prov.bytes, sendlog.bytes);
  EXPECT_EQ(ndlog.auth_bytes, 0u);
  EXPECT_GT(sendlog.auth_bytes, 0u);
  EXPECT_EQ(sendlog.prov_bytes, 0u);
  EXPECT_GT(prov.prov_bytes, 0u);
  // Authenticated variants do real signature work.
  EXPECT_EQ(ndlog.signs, 0u);
  EXPECT_GT(sendlog.signs, 0u);
}

// --- Soft state --------------------------------------------------------------

TEST(EngineTest, SoftStateTuplesExpire) {
  Topology topo = Topology::Line(2);
  EngineOptions opts;
  std::unique_ptr<Engine> e =
      MakeReachEngine(ReachableNdlogProgram(), opts, topo);
  ASSERT_TRUE(e->Run().ok());
  ASSERT_EQ(e->TuplesAt(0, "reachable").size(), 1u);

  // Re-insert a link with a short TTL at a fresh engine and age it out.
  Result<std::unique_ptr<Engine>> e2r =
      Engine::Create(topo, ReachableNdlogProgram(), opts);
  ASSERT_TRUE(e2r.ok());
  std::unique_ptr<Engine> e2 = std::move(e2r).value();
  ASSERT_TRUE(e2->InsertFact(0, Link2(0, 1), /*ttl=*/5.0).ok());
  ASSERT_TRUE(e2->Run().ok());
  EXPECT_EQ(e2->TuplesAt(0, "link").size(), 1u);
  e2->network().AdvanceTime(10.0);
  e2->ExpireNow();
  EXPECT_TRUE(e2->TuplesAt(0, "link").empty());
}

// --- Authentication failures -------------------------------------------------

TEST(EngineTest, TamperedMessagesAreDropped) {
  // A malicious forwarder is simulated by corrupting a says tag: verify that
  // a bad proof never enters a table. We force it via a custom handler-level
  // check: run with auth on and confirm zero failures on an honest network,
  // then craft a forged message by hand.
  Topology topo = Topology::FigureAbc();
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  std::unique_ptr<Engine> e =
      MakeReachEngine(ReachableSendlogProgram(), opts, topo);
  RunStats honest = e->Run().value();
  EXPECT_EQ(honest.auth_failures, 0u);

  // Forge: node 2 claims "n0 says linkD(...)" with a garbage MAC.
  ByteWriter content;
  Tuple forged("linkD", {Value::Address(1), Value::Address(0)});
  forged.Serialize(content);
  content.PutU8(0);  // no provenance payload
  SaysTag tag;
  tag.level = SaysLevel::kHmac;
  tag.principal = "n0";
  tag.proof.assign(32, 0xAB);
  ByteWriter msg;
  msg.PutU8(1);  // tuple message
  msg.PutBlob(content.bytes());
  msg.PutU8(1);
  tag.Serialize(msg);
  ASSERT_TRUE(e->network().Send(2, 1, std::move(msg).Take()).ok());
  RunStats after = e->Run().value();
  EXPECT_EQ(after.auth_failures, 1u);
}

}  // namespace
}  // namespace provnet
