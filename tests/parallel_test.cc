// Determinism contract of the sharded parallel executor (ISSUE 7).
//
// The oracle: a seeded 50-node Best-Path deployment must reach a
// byte-identical end state at every thread count — stored tuples and their
// provenance annotations, the per-Run() RunStats window, the full metrics
// snapshot (per-rule, per-link, per-kind counters), and the sampled trace
// stream (the 1-in-k sampling counter is consumed in canonical commit
// order, so even *which* hot-path events survive thinning is stable).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "apps/programs.h"
#include "core/engine.h"
#include "core/node_context.h"
#include "net/topology.h"
#include "obs/export.h"
#include "util/random.h"

namespace provnet {
namespace {

// The CI suite runs once with PROVNET_THREADS=4 to exercise every test in
// parallel mode; this test compares explicit thread counts against a true
// sequential baseline, so the ambient override must not apply.
void ClearThreadsEnv() { unsetenv("PROVNET_THREADS"); }

Topology SeededTopology(size_t nodes) {
  Rng rng(7);
  return Topology::RingPlusRandom(nodes, 3, rng);
}

struct RunResult {
  std::string fingerprint;  // stored tuples + annotations, all nodes
  std::string metrics;      // obs::SnapshotJson
  std::string trace;        // sampled trace stream, JSONL
  RunStats stats;
  uint64_t tuple_copies = 0;
};

// Every stored tuple at every node, with asserter and annotation, in a
// canonical order — byte-equal iff the fixpoints are identical.
std::string Fingerprint(Engine& engine) {
  std::ostringstream out;
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    for (Table* table : engine.node(n).AllTables()) {
      std::vector<std::string> lines;
      for (const StoredTuple* e : table->Scan()) {
        lines.push_back(e->tuple.ToString() + " by " + e->asserted_by +
                        " prov " + e->prov.ToString());
      }
      std::sort(lines.begin(), lines.end());
      for (const std::string& line : lines) {
        out << "n" << n << "|" << table->name() << "|" << line << "\n";
      }
    }
  }
  return out.str();
}

RunResult RunBestPath(size_t threads, ProvMode mode) {
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = mode;
  opts.threads = threads;
  Topology topo = SeededTopology(50);
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, BestPathNdlogProgram(), opts);
  EXPECT_TRUE(created.ok()) << created.status();
  std::unique_ptr<Engine> engine = std::move(created).value();
  // Thinned hot-path tracing: the regression oracle for the sampling
  // counter (a thread-dependent consumption order would change which
  // events survive, not just their order).
  engine->tracer().Enable(/*capacity=*/1 << 14, /*sample_every=*/4);
  StoredTuple::ResetCopyCount();
  EXPECT_TRUE(engine->InsertLinkFacts().ok());
  Result<RunStats> stats = engine->Run();
  EXPECT_TRUE(stats.ok()) << stats.status();

  RunResult result;
  result.fingerprint = Fingerprint(*engine);
  result.metrics = obs::SnapshotJson(engine->metrics());
  result.trace = engine->tracer().ToJsonl();
  result.stats = stats.value();
  result.tuple_copies = StoredTuple::CopyCount();
  return result;
}

void ExpectSameWindow(const RunStats& got, const RunStats& want) {
  EXPECT_EQ(got.deliveries, want.deliveries);
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(got.bytes, want.bytes);
  EXPECT_EQ(got.tuple_bytes, want.tuple_bytes);
  EXPECT_EQ(got.auth_bytes, want.auth_bytes);
  EXPECT_EQ(got.prov_bytes, want.prov_bytes);
  EXPECT_EQ(got.events, want.events);
  EXPECT_EQ(got.derivations, want.derivations);
  EXPECT_EQ(got.join_candidates, want.join_candidates);
  EXPECT_EQ(got.signs, want.signs);
  EXPECT_EQ(got.verifies, want.verifies);
  EXPECT_EQ(got.auth_failures, want.auth_failures);
  EXPECT_EQ(got.replays_rejected, want.replays_rejected);
  EXPECT_EQ(got.sim_seconds, want.sim_seconds);
}

class ParallelDeterminismTest : public ::testing::TestWithParam<ProvMode> {};

TEST_P(ParallelDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  ClearThreadsEnv();
  const ProvMode mode = GetParam();
  RunResult sequential = RunBestPath(1, mode);
  ASSERT_FALSE(sequential.fingerprint.empty());
  for (size_t threads : {size_t{2}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RunResult parallel = RunBestPath(threads, mode);
    EXPECT_EQ(parallel.fingerprint, sequential.fingerprint);
    EXPECT_EQ(parallel.metrics, sequential.metrics);
    EXPECT_EQ(parallel.trace, sequential.trace);
    ExpectSameWindow(parallel.stats, sequential.stats);
    // StoredTuple copies are table-op-driven; identical executions make
    // identical copies regardless of which lane performs them.
    EXPECT_EQ(parallel.tuple_copies, sequential.tuple_copies);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProvModes, ParallelDeterminismTest,
                         ::testing::Values(ProvMode::kNone,
                                           ProvMode::kCondensed,
                                           ProvMode::kFull),
                         [](const ::testing::TestParamInfo<ProvMode>& info) {
                           return ProvModeName(info.param);
                         });

// threads=0 resolves to hardware concurrency and must still be exact.
TEST(ParallelDeterminismTest, HardwareConcurrencyMatchesSequential) {
  ClearThreadsEnv();
  RunResult sequential = RunBestPath(1, ProvMode::kCondensed);
  RunResult hw = RunBestPath(0, ProvMode::kCondensed);
  EXPECT_EQ(hw.fingerprint, sequential.fingerprint);
  EXPECT_EQ(hw.metrics, sequential.metrics);
  EXPECT_EQ(hw.trace, sequential.trace);
}

// The PROVNET_THREADS override applies only to the untouched default.
TEST(ParallelDeterminismTest, EnvOverrideMatchesSequential) {
  ClearThreadsEnv();
  RunResult sequential = RunBestPath(1, ProvMode::kNone);
  setenv("PROVNET_THREADS", "3", /*overwrite=*/1);
  RunResult overridden = RunBestPath(1, ProvMode::kNone);
  unsetenv("PROVNET_THREADS");
  EXPECT_EQ(overridden.fingerprint, sequential.fingerprint);
  EXPECT_EQ(overridden.metrics, sequential.metrics);
  EXPECT_EQ(overridden.trace, sequential.trace);
}

}  // namespace
}  // namespace provnet
