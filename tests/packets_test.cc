// Packet-forwarding plane + spoofing traceback (the paper's IP-traceback
// motivation made concrete).

#include <gtest/gtest.h>

#include "apps/packets.h"
#include "net/topology.h"

namespace provnet {
namespace {

class PacketFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(808);
    topo_ = Topology::RingPlusRandom(10, 3, rng);
    EngineOptions opts;
    opts.authenticate = true;
    opts.says_level = SaysLevel::kHmac;
    opts.prov_mode = ProvMode::kPointers;  // per-hop records, zero shipping
    engine_ =
        Engine::Create(topo_, PacketRoutingSendlogProgram(), opts).value();
    ASSERT_TRUE(engine_->InsertLinkFacts().ok());
    ASSERT_TRUE(engine_->Run().ok());  // routing convergence
  }

  Topology topo_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(PacketFixture, HonestPacketIsDelivered) {
  PacketInjection honest{/*at=*/3, /*claimed_src=*/3, /*dst=*/0,
                         /*payload=*/42};
  ASSERT_TRUE(InjectPacket(*engine_, honest).ok());
  std::vector<Tuple> delivered = engine_->TuplesAt(0, "delivered");
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], DeliveredTuple(honest));
}

TEST_F(PacketFixture, HonestPacketTracesToClaimedSource) {
  PacketInjection honest{3, 3, 0, 42};
  ASSERT_TRUE(InjectPacket(*engine_, honest).ok());
  SpoofVerdict verdict = TracePacketOrigin(*engine_, honest).value();
  EXPECT_FALSE(verdict.spoofed);
  EXPECT_EQ(verdict.true_origin, 3u);
  EXPECT_EQ(verdict.claimed_src, 3u);
}

TEST_F(PacketFixture, SpoofedSourceIsExposedByProvenance) {
  // The attacker at node 5 claims to be node 8.
  PacketInjection spoofed{/*at=*/5, /*claimed_src=*/8, /*dst=*/0,
                          /*payload=*/1337};
  ASSERT_TRUE(InjectPacket(*engine_, spoofed).ok());

  // The destination's view (the header) blames node 8...
  std::vector<Tuple> delivered = engine_->TuplesAt(0, "delivered");
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].arg(1).AsAddress(), 8u);

  // ...but the provenance cannot be spoofed.
  SpoofVerdict verdict = TracePacketOrigin(*engine_, spoofed).value();
  EXPECT_TRUE(verdict.spoofed);
  EXPECT_EQ(verdict.true_origin, 5u);
  EXPECT_EQ(verdict.claimed_src, 8u);
}

TEST_F(PacketFixture, ForwardingPathFollowsBestPath) {
  PacketInjection pkt{5, 5, 0, 7};
  ASSERT_TRUE(InjectPacket(*engine_, pkt).ok());
  SpoofVerdict verdict = TracePacketOrigin(*engine_, pkt).value();

  // The recorded forwarding path must contain the hops of 5's best path
  // to 0.
  Tuple best;
  for (const Tuple& t : engine_->TuplesAt(5, "bestPath")) {
    if (t.arg(1).AsAddress() == 0) best = t;
  }
  ASSERT_EQ(best.predicate(), "bestPath");
  for (const Value& hop : best.arg(2).AsList()) {
    EXPECT_TRUE(verdict.forwarding_path.count(hop.AsAddress()))
        << "missing hop " << hop.ToString();
  }
}

TEST_F(PacketFixture, DistinctPayloadsTraceIndependently) {
  PacketInjection a{5, 8, 0, 1};
  PacketInjection b{7, 8, 0, 2};  // different attacker, same claimed source
  ASSERT_TRUE(InjectPacket(*engine_, a).ok());
  ASSERT_TRUE(InjectPacket(*engine_, b).ok());
  EXPECT_EQ(TracePacketOrigin(*engine_, a).value().true_origin, 5u);
  EXPECT_EQ(TracePacketOrigin(*engine_, b).value().true_origin, 7u);
}

TEST_F(PacketFixture, TraceFailsWithoutRecords) {
  PacketInjection never{5, 5, 0, 999};
  EXPECT_FALSE(TracePacketOrigin(*engine_, never).ok());
}

}  // namespace
}  // namespace provnet
