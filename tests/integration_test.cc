// Cross-module integration tests: the provenance taxonomy modes agree with
// each other, distributed reconstruction matches local trees, sampling
// composes with the engine, and trust policies act on live engine state.

#include <gtest/gtest.h>

#include <set>

#include "apps/bestpath.h"
#include "apps/forensics.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "provenance/semiring.h"
#include "query/provquery.h"

namespace provnet {
namespace {

Tuple Link2(NodeId a, NodeId b) {
  return Tuple("link", {Value::Address(a), Value::Address(b)});
}

std::unique_ptr<Engine> RunReach(const Topology& topo, EngineOptions opts) {
  auto engine =
      Engine::Create(topo, ReachableSendlogProgram(), std::move(opts)).value();
  for (const TopoEdge& e : topo.edges) {
    EXPECT_TRUE(engine->InsertFact(e.from, Link2(e.from, e.to)).ok());
  }
  EXPECT_TRUE(engine->Run().ok());
  return engine;
}

// --- Taxonomy-mode agreement -------------------------------------------------

TEST(IntegrationTest, AllProvModesComputeIdenticalTables) {
  Rng rng(101);
  Topology topo = Topology::RingPlusRandom(9, 3, rng);
  std::vector<std::vector<Tuple>> results;
  for (ProvMode mode : {ProvMode::kNone, ProvMode::kCondensed,
                        ProvMode::kFull, ProvMode::kPointers}) {
    EngineOptions opts;
    opts.authenticate = true;
    opts.says_level = SaysLevel::kHmac;
    opts.prov_mode = mode;
    auto engine = RunReach(topo, opts);
    std::vector<Tuple> all;
    for (NodeId n = 0; n < 9; ++n) {
      for (const Tuple& t : engine->TuplesAt(n, "reachable")) {
        all.push_back(t);
      }
    }
    std::sort(all.begin(), all.end());
    results.push_back(std::move(all));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "mode " << i << " diverged";
  }
}

TEST(IntegrationTest, FullTreeLeavesMatchCondensedVariables) {
  // The base tuples at the leaves of the full derivation tree must assert
  // exactly the principals that appear in the condensed annotation.
  Topology topo = Topology::FigureAbc();
  EngineOptions full_opts;
  full_opts.authenticate = true;
  full_opts.says_level = SaysLevel::kHmac;
  full_opts.prov_mode = ProvMode::kFull;
  full_opts.node_names = {"a", "b", "c"};
  auto full_engine = RunReach(topo, full_opts);

  EngineOptions cond_opts = full_opts;
  cond_opts.prov_mode = ProvMode::kCondensed;
  auto cond_engine = RunReach(topo, cond_opts);

  Tuple reach_ac("reachable", {Value::Address(0), Value::Address(2)});
  DerivationPtr tree = full_engine->LocalDerivationOf(0, reach_ac).value();
  std::set<std::string> leaf_principals;
  std::function<void(const DerivationNode&)> walk =
      [&](const DerivationNode& n) {
        if (n.children.empty()) leaf_principals.insert(n.asserted_by);
        for (const DerivationPtr& c : n.children) walk(*c);
      };
  walk(*tree);

  ProvExpr annotation = cond_engine->AnnotationOf(0, reach_ac).value();
  std::set<std::string> annotation_principals;
  for (ProvVar v : annotation.Variables()) {
    annotation_principals.insert(cond_engine->VarName(v));
  }
  EXPECT_EQ(leaf_principals, annotation_principals);
}

TEST(IntegrationTest, DistributedReconstructionMatchesLocalTree) {
  Topology topo = Topology::FigureAbc();
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kFull;
  opts.record_online = true;  // also keep pointer records
  opts.node_names = {"a", "b", "c"};
  auto engine = RunReach(topo, opts);

  Tuple reach_ac("reachable", {Value::Address(0), Value::Address(2)});
  QueryResult local = ProvQueryBuilder(*engine)
                          .At(0)
                          .Of(reach_ac)
                          .WithScope(QueryScope::kLocal)
                          .Run()
                          .value();
  QueryResult remote = ProvQueryBuilder(*engine)
                           .At(0)
                           .Of(reach_ac)
                           .WithScope(QueryScope::kDistributed)
                           .Run()
                           .value();

  // Same base tuples recovered either way — and the same proof structure:
  // the distributed reconstruction is byte-identical to the canonical form
  // of the locally stored full-provenance tree.
  EXPECT_EQ(local.dag.Leaves(), remote.dag.Leaves());
  EXPECT_EQ(local.dag.CanonicalBytes(), remote.dag.CanonicalBytes());
}

TEST(IntegrationTest, DistributedQueryChargesBandwidth) {
  Topology topo = Topology::FigureAbc();
  EngineOptions opts;
  opts.prov_mode = ProvMode::kPointers;
  opts.node_names = {"a", "b", "c"};
  auto engine = RunReach(topo, opts);

  uint64_t bytes_before = engine->network().total_bytes();
  Tuple reach_ac("reachable", {Value::Address(0), Value::Address(2)});
  Result<QueryResult> result = ProvQueryBuilder(*engine)
                                   .At(0)
                                   .Of(reach_ac)
                                   .WithScope(QueryScope::kDistributed)
                                   .Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(engine->network().total_bytes(), bytes_before);
  EXPECT_EQ(result.value().stats.bytes,
            engine->network().total_bytes() - bytes_before);
}

// --- Quantifiable provenance on live state ------------------------------------

TEST(IntegrationTest, CountingSemiringSeesBothDiamondPaths) {
  Topology diamond;
  diamond.num_nodes = 4;
  diamond.edges = {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}};
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kCondensed;
  auto engine = RunReach(diamond, opts);
  Tuple reach("reachable", {Value::Address(0), Value::Address(3)});
  ProvExpr annotation = engine->AnnotationOf(0, reach).value();
  EXPECT_EQ(DerivationCount(annotation), 2u);
}

// --- Sampling composed with the engine -----------------------------------------

TEST(IntegrationTest, SamplingReducesRecordsMonotonically) {
  Rng rng(55);
  Topology topo = Topology::RingPlusRandom(10, 3, rng);
  size_t previous = SIZE_MAX;
  for (uint32_t k : {1u, 4u, 16u}) {
    EngineOptions opts;
    opts.prov_mode = ProvMode::kPointers;
    opts.sample_k = k;
    auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
    ASSERT_TRUE(engine->InsertLinkFacts().ok());
    ASSERT_TRUE(engine->Run().ok());
    size_t records = 0;
    for (NodeId n = 0; n < engine->num_nodes(); ++n) {
      records += engine->node(n).online_store().size();
    }
    EXPECT_LT(records, previous) << "k=" << k;
    previous = records;
  }
}

// --- Reactive recording ----------------------------------------------------------

TEST(IntegrationTest, ReactiveModeRecordsNothingUntilEnabled) {
  Topology topo = Topology::FigureAbc();
  EngineOptions opts;
  opts.prov_mode = ProvMode::kPointers;
  opts.recording_enabled = false;
  auto engine = RunReach(topo, opts);
  size_t quiet = 0;
  for (NodeId n = 0; n < 3; ++n) {
    quiet += engine->node(n).online_store().size();
  }
  EXPECT_EQ(quiet, 0u);

  // Enable and feed a new fact: only new derivations get records.
  engine->SetRecordingEnabled(true);
  ASSERT_TRUE(engine->InsertFact(2, Link2(2, 0)).ok());
  ASSERT_TRUE(engine->Run().ok());
  size_t after = 0;
  for (NodeId n = 0; n < 3; ++n) {
    after += engine->node(n).online_store().size();
  }
  EXPECT_GT(after, 0u);
}

// --- Online provenance reaction (Section 4.2) -------------------------------------

TEST(IntegrationTest, DependentsOfMaliciousNode) {
  Topology topo = Topology::FigureAbc();
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kPointers;
  opts.node_names = {"a", "b", "c"};
  auto engine = RunReach(topo, opts);

  // Declare b malicious: which of a's online records depend on it?
  std::vector<TupleDigest> tainted =
      engine->node(0).online_store().DependentsOf("b");
  // reachable(a,c) arrived via b, so it must be tainted.
  Tuple reach_ac("reachable", {Value::Address(0), Value::Address(2)});
  bool found = false;
  for (TupleDigest d : tainted) {
    if (d == DigestOf(reach_ac)) found = true;
  }
  EXPECT_TRUE(found);
}

// --- Variant sweep across topology families ----------------------------------------

struct TopoCase {
  const char* name;
  Topology topo;
};

class TopologyFamilySweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologyFamilySweep, BestPathMatchesOracle) {
  Rng rng(300 + GetParam());
  Topology topo;
  switch (GetParam() % 3) {
    case 0:
      topo = Topology::Line(6);
      break;
    case 1:
      topo = Topology::RingPlusRandom(7 + GetParam(), 2, rng);
      break;
    default:
      topo = Topology::RingPlusRandom(6 + GetParam(), 3, rng);
      break;
  }
  Result<BestPathRun> run = RunBestPath(topo, Variant::kNdlog);
  ASSERT_TRUE(run.ok()) << run.status();
  Status verified = VerifyBestPaths(*run.value().engine, topo);
  EXPECT_TRUE(verified.ok()) << verified;
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologyFamilySweep,
                         ::testing::Range(0, 9));

}  // namespace
}  // namespace provnet
