// Fault-tolerant transport (src/net/faults.*, transport machinery in
// src/net/network.cc, crash/restart in src/core/engine.cc, query
// degradation in src/query/): deterministic fault injection, ack/retransmit
// with backoff, fail-stop crash-restart recovery, and graceful ProvQuery
// degradation.
//
// The oracles:
//   * determinism   - every fault verdict is a pure function of (plan seed,
//     link, attempt counter); identical plans replay identical fault
//     sequences at any thread count;
//   * transparency  - benign loss/duplication/reorder under the reliable
//     transport converges to the fault-free fixpoint with zero kReplay
//     false positives (honest retransmits dedup below the ReplayGuard);
//   * recovery      - a scripted crash loses all in-memory state, yet the
//     restarted node re-derives to the fault-free fixpoint from its journal
//     and durable archive, and distributed proofs come back byte-identical;
//   * degradation   - a partitioned ProvQuery responder times out, retries
//     with backoff, then degrades to its offline archive (or an
//     `unreachable` proof leaf) instead of hanging or failing the query;
//   * inertness     - with no plan and no transport, the telemetry key set
//     and wire behavior are exactly the historical ones.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/faults.h"
#include "net/topology.h"
#include "query/provquery.h"

namespace provnet {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() /
              ("provnet_fault_test_" + name + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

Tuple Link2(NodeId a, NodeId b) {
  return Tuple("link", {Value::Address(a), Value::Address(b)});
}

Tuple Reach(NodeId a, NodeId b) {
  return Tuple("reachable", {Value::Address(a), Value::Address(b)});
}

EngineOptions AuthOptions() {
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  return opts;
}

std::unique_ptr<Engine> RunReach(const Topology& topo, EngineOptions opts) {
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, ReachableSendlogProgram(), std::move(opts));
  EXPECT_TRUE(created.ok()) << created.status();
  std::unique_ptr<Engine> engine = std::move(created).value();
  for (const TopoEdge& e : topo.edges) {
    EXPECT_TRUE(engine->InsertFact(e.from, Link2(e.from, e.to)).ok());
  }
  EXPECT_TRUE(engine->Run().ok());
  return engine;
}

void ExpectSamePredAt(Engine& got, Engine& want, const std::string& pred) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  for (NodeId n = 0; n < got.num_nodes(); ++n) {
    EXPECT_EQ(got.TuplesAt(n, pred), want.TuplesAt(n, pred))
        << pred << " diverged at node " << n;
  }
}

uint64_t CounterValue(const Engine& engine, const std::string& name,
                      obs::Labels labels = {}) {
  const obs::Counter* c =
      engine.metrics().FindCounter(name, std::move(labels));
  return c != nullptr ? c->value : 0;
}

bool HasCounterNamed(const Engine& engine, const std::string& name) {
  for (const auto& [key, counter] : engine.metrics().counters()) {
    if (key.first == name) return true;
  }
  return false;
}

// --- Deterministic fault RNG ------------------------------------------------

TEST(FaultRngTest, VerdictsAreAPureFunctionOfPlanAndAttemptOrder) {
  FaultPlan plan;
  plan.seed = 42;
  plan.links.push_back(
      LinkFaultSpec{kAnyNode, kAnyNode, 0.3, 0.2, 0.1, 0.15, 0.05});
  FaultInjector a(plan);
  FaultInjector b(plan);
  bool any_fault = false;
  for (int i = 0; i < 200; ++i) {
    NodeId from = static_cast<NodeId>(i % 3);
    NodeId to = static_cast<NodeId>((i + 1) % 3);
    FaultInjector::Verdict va = a.OnTransmit(from, to);
    FaultInjector::Verdict vb = b.OnTransmit(from, to);
    EXPECT_EQ(va.drop, vb.drop);
    EXPECT_EQ(va.duplicate, vb.duplicate);
    EXPECT_EQ(va.corrupt, vb.corrupt);
    EXPECT_EQ(va.extra_delay_s, vb.extra_delay_s);
    any_fault |= va.drop || va.duplicate || va.corrupt;
  }
  EXPECT_TRUE(any_fault);  // 200 draws at these rates cannot all pass

  // A different seed scripts a different run.
  FaultPlan other = plan;
  other.seed = 43;
  FaultInjector c(other);
  bool diverged = false;
  FaultInjector d(plan);
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = c.OnTransmit(0, 1).drop != d.OnTransmit(0, 1).drop;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultRngTest, DrawsAreIndependentPerLink) {
  FaultPlan plan = FaultPlan::UniformLoss(0.5, 7);
  FaultInjector injector(plan);
  // Interleaving transmissions on another link must not perturb the first
  // link's verdict sequence — that is what makes sharded execution replay
  // the same faults as sequential execution.
  FaultInjector interleaved(plan);
  for (int i = 0; i < 100; ++i) {
    FaultInjector::Verdict plain = injector.OnTransmit(0, 1);
    (void)interleaved.OnTransmit(2, 3);  // extra traffic elsewhere
    FaultInjector::Verdict mixed = interleaved.OnTransmit(0, 1);
    EXPECT_EQ(plain.drop, mixed.drop) << "draw " << i;
  }
}

TEST(FaultRngTest, ParseSpecRoundTrip) {
  bool ok = false;
  FaultPlan plan =
      FaultPlan::ParseSpec("loss=0.01,dup=0.002,corrupt=0.003,reorder=0.04,"
                           "seed=9",
                           &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(plan.links.size(), 1u);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.links[0].loss, 0.01);
  EXPECT_DOUBLE_EQ(plan.links[0].duplication, 0.002);
  EXPECT_DOUBLE_EQ(plan.links[0].corruption, 0.003);
  EXPECT_DOUBLE_EQ(plan.links[0].reorder, 0.04);

  FaultPlan::ParseSpec("loss=0.01,bogus=1", &ok);
  EXPECT_FALSE(ok);
  FaultPlan empty = FaultPlan::ParseSpec("", &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(empty.Empty());
}

TEST(FaultRngTest, EnvVarInstallsPlanAtCreate) {
  ASSERT_EQ(::setenv("PROVNET_FAULT_PLAN", "loss=0.05,seed=3", 1), 0);
  Topology topo = Topology::Line(3);
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, ReachableSendlogProgram(), EngineOptions{});
  ::unsetenv("PROVNET_FAULT_PLAN");
  ASSERT_TRUE(created.ok()) << created.status();
  const FaultInjector* injector =
      created.value()->network().fault_injector();
  ASSERT_NE(injector, nullptr);
  ASSERT_EQ(injector->plan().links.size(), 1u);
  EXPECT_DOUBLE_EQ(injector->plan().links[0].loss, 0.05);
  EXPECT_TRUE(created.value()->network().TransportEnabled());
}

// --- Reliable transport under benign faults ---------------------------------

TEST(FaultTransportTest, LossMaskedByRetransmissionZeroReplayFalsePositives) {
  Topology topo = Topology::Line(5);
  std::unique_ptr<Engine> golden = RunReach(topo, AuthOptions());

  EngineOptions opts = AuthOptions();
  // 0.4 is high enough that this small run's ~10 data frames certainly see
  // losses (lower rates with this seed only clipped acks, which retransmit
  // but are not counted as faults.losses).
  opts.fault_plan = FaultPlan::UniformLoss(0.4, 7);
  std::unique_ptr<Engine> lossy = RunReach(topo, opts);

  // The fixpoint is the fault-free one: loss was masked, not absorbed.
  ExpectSamePredAt(*lossy, *golden, "link");
  ExpectSamePredAt(*lossy, *golden, "reachable");

  // Faults actually bit and the transport actually worked.
  EXPECT_GT(lossy->network().retransmits(), 0u);
  EXPECT_GT(lossy->network().acks_received(), 0u);
  EXPECT_GT(CounterValue(*lossy, "faults.losses"), 0u);
  EXPECT_EQ(CounterValue(*lossy, "net.retransmits"),
            lossy->network().retransmits());
  EXPECT_EQ(CounterValue(*lossy, "net.dropped", {{"cause", "fault"}}),
            CounterValue(*lossy, "faults.losses"));

  // Honest retransmits dedup below the adversary layer: no replay audits.
  EXPECT_EQ(lossy->security_log().CountOf(SecurityEventKind::kReplay), 0u);
  EXPECT_EQ(lossy->network().links_dead(), 0u);
}

TEST(FaultTransportTest, DuplicationAndReorderConvergeIdentically) {
  Topology topo = Topology::FigureAbc();
  std::unique_ptr<Engine> golden = RunReach(topo, AuthOptions());

  EngineOptions opts = AuthOptions();
  FaultPlan plan;
  plan.seed = 5;
  LinkFaultSpec spec;
  spec.duplication = 0.5;
  spec.reorder = 0.3;
  plan.links.push_back(spec);
  opts.fault_plan = plan;
  std::unique_ptr<Engine> noisy = RunReach(topo, opts);

  ExpectSamePredAt(*noisy, *golden, "reachable");
  EXPECT_GT(noisy->network().duplicates_deduped(), 0u);
  EXPECT_EQ(noisy->security_log().CountOf(SecurityEventKind::kReplay), 0u);
}

TEST(FaultTransportTest, TotalLossDeclaresTheLinkDeadAndTerminates) {
  Topology topo = Topology::Line(3);
  EngineOptions opts = AuthOptions();
  FaultPlan plan;
  plan.seed = 1;
  plan.links.push_back(LinkFaultSpec{0, 1, /*loss=*/1.0});
  opts.fault_plan = plan;
  // The run must terminate (bounded retry budget), with the dead link
  // surfaced, not spin retransmitting forever.
  std::unique_ptr<Engine> engine = RunReach(topo, opts);
  EXPECT_GE(engine->network().links_dead(), 1u);
  EXPECT_GE(CounterValue(*engine, "net.links_dead"), 1u);
  EXPECT_GT(CounterValue(*engine, "net.dropped", {{"cause", "fault"}}), 0u);
  // Node 1 still computes its own reachability (only 0->1 is cut).
  EXPECT_FALSE(engine->TuplesAt(1, "reachable").empty());
}

TEST(FaultTransportTest, ThreadCountDoesNotChangeTheFaultedRun) {
  Topology topo = Topology::Line(5);
  EngineOptions opts = AuthOptions();
  opts.fault_plan = FaultPlan::UniformLoss(0.15, 23);

  EngineOptions four = opts;
  four.threads = 4;
  std::unique_ptr<Engine> one_thread = RunReach(topo, opts);
  std::unique_ptr<Engine> four_threads = RunReach(topo, four);

  ExpectSamePredAt(*four_threads, *one_thread, "reachable");
  EXPECT_EQ(four_threads->network().retransmits(),
            one_thread->network().retransmits());
  EXPECT_EQ(CounterValue(*four_threads, "faults.losses"),
            CounterValue(*one_thread, "faults.losses"));
  EXPECT_EQ(four_threads->network().total_bytes(),
            one_thread->network().total_bytes());
}

// --- Crash-restart recovery -------------------------------------------------

TEST(CrashRestartTest, ScriptedCrashRestartRederivesTheFaultFreeFixpoint) {
  TempDir dir("crash_restart");
  Topology topo = Topology::Line(4);
  std::unique_ptr<Engine> golden = RunReach(topo, AuthOptions());

  EngineOptions opts = AuthOptions();
  opts.prov_mode = ProvMode::kPointers;
  opts.record_online = true;
  opts.record_offline = true;
  opts.archive_dir = dir.str();
  opts.fault_plan.crashes.push_back(CrashSpec{/*crash_at=*/0.05,
                                              /*restart_at=*/0.5,
                                              /*node=*/2});
  std::unique_ptr<Engine> crashed = RunReach(topo, opts);

  ExpectSamePredAt(*crashed, *golden, "link");
  ExpectSamePredAt(*crashed, *golden, "reachable");
  EXPECT_EQ(CounterValue(*crashed, "faults.crashes"), 1u);
  EXPECT_EQ(CounterValue(*crashed, "faults.restarts"), 1u);
}

TEST(CrashRestartTest, CrashWithLossStillConvergesAtBothThreadCounts) {
  // The acceptance scenario: benign loss plus a crash window, run at
  // threads 1 and 4, all byte-identical to each other and tuple-identical
  // to the fault-free fixpoint.
  Topology topo = Topology::Line(4);
  std::unique_ptr<Engine> golden = RunReach(topo, AuthOptions());

  auto run = [&](size_t threads, const std::string& dir_name) {
    TempDir dir(dir_name);
    EngineOptions opts = AuthOptions();
    opts.threads = threads;
    opts.prov_mode = ProvMode::kPointers;
    opts.record_online = true;
    opts.record_offline = true;
    opts.archive_dir = dir.str();
    opts.fault_plan = FaultPlan::UniformLoss(0.05, 17);
    opts.fault_plan.crashes.push_back(CrashSpec{0.08, 0.6, 1});
    std::unique_ptr<Engine> engine = RunReach(topo, opts);
    ExpectSamePredAt(*engine, *golden, "reachable");
    return engine;
  };
  std::unique_ptr<Engine> t1 = run(1, "accept_t1");
  std::unique_ptr<Engine> t4 = run(4, "accept_t4");
  EXPECT_EQ(t1->network().retransmits(), t4->network().retransmits());
  EXPECT_EQ(CounterValue(*t1, "faults.losses"),
            CounterValue(*t4, "faults.losses"));
  EXPECT_EQ(t1->network().total_bytes(), t4->network().total_bytes());
}

TEST(CrashRestartTest, NeverRestartedNodeStaysDownWithoutHangingTheRun) {
  Topology topo = Topology::Line(3);
  EngineOptions opts = AuthOptions();
  opts.fault_plan.crashes.push_back(
      CrashSpec{/*crash_at=*/0.02, /*restart_at=*/-1.0, /*node=*/2});
  std::unique_ptr<Engine> engine = RunReach(topo, opts);
  EXPECT_TRUE(engine->network().IsCrashed(2));
  EXPECT_EQ(CounterValue(*engine, "faults.crashes"), 1u);
  EXPECT_EQ(CounterValue(*engine, "faults.restarts"), 0u);
  // The dead node's tables are gone; the survivors' fixpoint is intact.
  EXPECT_TRUE(engine->TuplesAt(2, "reachable").empty());
  EXPECT_FALSE(engine->TuplesAt(1, "reachable").empty());
}

TEST(CrashRestartTest, MidRunArchiveCrashKeepsDistributedProofsByteIdentical) {
  // Satellite: crash between archive writes (the abandoned page buffer
  // leaves a torn tail), restart mid-run, and the *distributed* proof of a
  // tuple flowing through the crashed node must come back byte-identical to
  // the fault-free engine's — recovery is invisible to forensics.
  Topology topo = Topology::Line(4);
  EngineOptions base = AuthOptions();
  base.prov_mode = ProvMode::kPointers;
  base.record_online = true;
  base.record_offline = true;

  TempDir golden_dir("proofs_golden");
  EngineOptions golden_opts = base;
  golden_opts.archive_dir = golden_dir.str();
  std::unique_ptr<Engine> golden = RunReach(topo, golden_opts);

  TempDir crash_dir("proofs_crash");
  EngineOptions crash_opts = base;
  crash_opts.archive_dir = crash_dir.str();
  crash_opts.fault_plan.crashes.push_back(CrashSpec{0.05, 0.5, 1});
  std::unique_ptr<Engine> crashed = RunReach(topo, crash_opts);

  ExpectSamePredAt(*crashed, *golden, "reachable");
  // reachable(S,D) lives at S, so ask each proof at its source node —
  // including S=1, the node that crashed and recovered.
  const std::pair<NodeId, Tuple> probes[] = {
      {0, Reach(0, 2)}, {0, Reach(0, 3)}, {1, Reach(1, 3)}};
  for (const auto& [asker, t] : probes) {
    Result<QueryResult> got = ProvQueryBuilder(*crashed)
                                  .At(asker)
                                  .Of(t)
                                  .WithScope(QueryScope::kDistributed)
                                  .Run();
    Result<QueryResult> want = ProvQueryBuilder(*golden)
                                   .At(asker)
                                   .Of(t)
                                   .WithScope(QueryScope::kDistributed)
                                   .Run();
    ASSERT_TRUE(got.ok()) << t.ToString() << ": " << got.status();
    ASSERT_TRUE(want.ok()) << t.ToString() << ": " << want.status();
    EXPECT_EQ(got.value().dag.CanonicalBytes(),
              want.value().dag.CanonicalBytes())
        << "proof diverged for " << t.ToString();
    EXPECT_EQ(got.value().stats.unreachable, 0u);
  }
}

// --- Graceful ProvQuery degradation -----------------------------------------

// A plan that isolates node 0 from everyone starting at t=5 (well after the
// fixpoint converges) — the asker keeps its local records but every remote
// hop of a later query is partitioned away.
FaultPlan IsolateAskerAfterFixpoint(size_t num_nodes) {
  FaultPlan plan;
  plan.seed = 3;
  for (NodeId n = 1; n < num_nodes; ++n) {
    plan.partitions.push_back(PartitionSpec{5.0, 1e9, 0, n, true});
  }
  return plan;
}

TEST(QueryDegradationTest, PartitionedResponderDegradesToUnreachableLeaf) {
  Topology topo = Topology::Line(3);
  EngineOptions opts = AuthOptions();
  opts.prov_mode = ProvMode::kPointers;
  opts.record_online = true;  // no offline archive: nothing to fall back on
  opts.fault_plan = IsolateAskerAfterFixpoint(topo.num_nodes);
  std::unique_ptr<Engine> engine = RunReach(topo, opts);
  engine->network().AdvanceTime(10.0);  // into the partition window

  Result<QueryResult> result = ProvQueryBuilder(*engine)
                                   .At(0)
                                   .Of(Reach(0, 2))
                                   .WithScope(QueryScope::kDistributed)
                                   .Run();
  ASSERT_TRUE(result.ok()) << result.status();
  const QueryResult& out = result.value();
  // The query degraded instead of hanging: deadlines fired, retries were
  // attempted, and the cut branches surface as `unreachable` leaves.
  EXPECT_GT(out.stats.timeouts, 0u);
  EXPECT_GT(out.stats.retries, 0u);
  EXPECT_GT(out.stats.unreachable, 0u);
  bool has_unreachable_leaf = false;
  for (const ProofNode& n : out.dag.nodes) {
    if (n.rule == kUnreachableRule) {
      has_unreachable_leaf = true;
      EXPECT_FALSE(n.IsOrigin());  // never mistaken for a base assertion
    }
    EXPECT_NE(n.rule, kMissingRule)
        << "a partitioned branch must read unreachable, not missing";
  }
  EXPECT_TRUE(has_unreachable_leaf);
}

TEST(QueryDegradationTest, OfflineArchiveIsTheStandardAnswerWhenPartitioned) {
  Topology topo = Topology::Line(3);
  EngineOptions base = AuthOptions();
  base.prov_mode = ProvMode::kPointers;
  base.record_online = true;
  base.record_offline = true;

  // Golden: same transport, no partitions — the wire answer.
  TempDir golden_dir("degrade_golden");
  EngineOptions golden_opts = base;
  golden_opts.archive_dir = golden_dir.str();
  golden_opts.reliable_transport = true;
  std::unique_ptr<Engine> golden = RunReach(topo, golden_opts);
  Result<QueryResult> want = ProvQueryBuilder(*golden)
                                 .At(0)
                                 .Of(Reach(0, 2))
                                 .WithScope(QueryScope::kDistributed)
                                 .Run();
  ASSERT_TRUE(want.ok()) << want.status();

  TempDir part_dir("degrade_part");
  EngineOptions part_opts = base;
  part_opts.archive_dir = part_dir.str();
  part_opts.fault_plan = IsolateAskerAfterFixpoint(topo.num_nodes);
  std::unique_ptr<Engine> engine = RunReach(topo, part_opts);
  engine->network().AdvanceTime(10.0);

  Result<QueryResult> got = ProvQueryBuilder(*engine)
                                .At(0)
                                .Of(Reach(0, 2))
                                .WithScope(QueryScope::kDistributed)
                                .Run();
  ASSERT_TRUE(got.ok()) << got.status();
  // Every partitioned hop was answered from the responder's durable archive
  // — the degraded proof is byte-identical to the wire proof.
  EXPECT_EQ(got.value().dag.CanonicalBytes(),
            want.value().dag.CanonicalBytes());
  EXPECT_GT(got.value().stats.timeouts, 0u);
  EXPECT_GT(got.value().stats.offline_hits, 0u);
  EXPECT_EQ(got.value().stats.unreachable, 0u);
  // The QueryStats line names the degradation; the golden one is unchanged.
  EXPECT_NE(got.value().stats.ToString().find("timeouts="),
            std::string::npos);
  EXPECT_EQ(want.value().stats.ToString().find("timeouts="),
            std::string::npos);
}

TEST(QueryDegradationTest, HealedPartitionAnswersOverTheWireAgain) {
  Topology topo = Topology::Line(3);
  EngineOptions opts = AuthOptions();
  opts.prov_mode = ProvMode::kPointers;
  opts.record_online = true;
  FaultPlan plan;
  plan.seed = 3;
  // Partition heals at t=20.
  plan.partitions.push_back(PartitionSpec{5.0, 20.0, 0, 1, true});
  plan.partitions.push_back(PartitionSpec{5.0, 20.0, 0, 2, true});
  opts.fault_plan = plan;
  std::unique_ptr<Engine> engine = RunReach(topo, opts);
  engine->network().AdvanceTime(30.0);  // past the healed window

  Result<QueryResult> result = ProvQueryBuilder(*engine)
                                   .At(0)
                                   .Of(Reach(0, 2))
                                   .WithScope(QueryScope::kDistributed)
                                   .Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().stats.timeouts, 0u);
  EXPECT_EQ(result.value().stats.unreachable, 0u);
  EXPECT_GT(result.value().stats.responses, 0u);
}

// --- Telemetry inertness ----------------------------------------------------

TEST(FaultTelemetryTest, FaultFreeRunsRegisterNoFaultOrTransportKeys) {
  Topology topo = Topology::FigureAbc();
  std::unique_ptr<Engine> engine = RunReach(topo, AuthOptions());
  for (const char* name :
       {"net.retransmits", "net.acks_received", "net.links_dead",
        "net.dup_deduped", "net.corrupt_dropped", "net.dropped",
        "faults.losses", "faults.duplicates", "faults.corruptions",
        "faults.reorders", "faults.partition_drops", "faults.crashes",
        "faults.restarts"}) {
    EXPECT_FALSE(HasCounterNamed(*engine, name))
        << name << " leaked into a fault-free run's telemetry";
  }
  EXPECT_FALSE(engine->network().TransportEnabled());
}

TEST(FaultTelemetryTest, FaultedRunsRegisterTheFullKeySet) {
  EngineOptions opts = AuthOptions();
  opts.fault_plan = FaultPlan::UniformLoss(0.1, 2);
  std::unique_ptr<Engine> engine = RunReach(Topology::FigureAbc(), opts);
  for (const char* name : {"net.retransmits", "net.acks_received",
                           "faults.losses", "faults.duplicates"}) {
    EXPECT_TRUE(HasCounterNamed(*engine, name)) << name;
  }
}

TEST(FaultTelemetryTest, DropCausesAreLabeledSeparately) {
  Topology topo = Topology::Line(3);
  EngineOptions opts = AuthOptions();
  FaultPlan plan;
  plan.seed = 1;
  plan.links.push_back(LinkFaultSpec{0, 1, /*loss=*/1.0});
  plan.partitions.push_back(PartitionSpec{0.0, 1e9, 1, 2, true});
  opts.fault_plan = plan;
  std::unique_ptr<Engine> engine = RunReach(topo, opts);
  EXPECT_GT(CounterValue(*engine, "net.dropped", {{"cause", "fault"}}), 0u);
  EXPECT_GT(CounterValue(*engine, "net.dropped", {{"cause", "partition"}}),
            0u);
  EXPECT_EQ(CounterValue(*engine, "net.dropped", {{"cause", "partition"}}),
            CounterValue(*engine, "faults.partition_drops"));
}

}  // namespace
}  // namespace provnet
