// Golden-fixpoint equivalence tests for the slot-compiled evaluator
// (core/slots.h): the engine's join core must produce byte-identical stored
// state and identical derivation counts regardless of provenance mode, and
// must agree with independent references (Dijkstra for Best-Path, an
// in-test transitive closure for the says dialect). Plus the zero-copy
// guarantees: no per-candidate StoredTuple copies, and column indexes that
// stay consistent across Remove/ExpireBefore.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <queue>

#include "apps/programs.h"
#include "core/engine.h"
#include "core/table.h"
#include "net/topology.h"
#include "util/random.h"

namespace provnet {
namespace {

std::unique_ptr<Engine> FixpointEngine(const Topology& topo,
                                       const std::string& source,
                                       EngineOptions opts,
                                       RunStats* stats_out = nullptr) {
  Result<std::unique_ptr<Engine>> engine = Engine::Create(topo, source, opts);
  EXPECT_TRUE(engine.ok()) << engine.status();
  std::unique_ptr<Engine> e = std::move(engine).value();
  EXPECT_TRUE(e->InsertLinkFacts().ok());
  Result<RunStats> stats = e->Run();
  EXPECT_TRUE(stats.ok()) << stats.status();
  if (stats_out != nullptr && stats.ok()) *stats_out = stats.value();
  return e;
}

// Independent shortest-path reference.
std::vector<std::vector<int64_t>> Dijkstra(const Topology& topo) {
  constexpr int64_t kInf = std::numeric_limits<int64_t>::max();
  std::vector<std::vector<int64_t>> dist(
      topo.num_nodes, std::vector<int64_t>(topo.num_nodes, kInf));
  std::vector<std::vector<std::pair<NodeId, int64_t>>> adj(topo.num_nodes);
  for (const TopoEdge& e : topo.edges) adj[e.from].push_back({e.to, e.cost});
  for (NodeId s = 0; s < topo.num_nodes; ++s) {
    auto& d = dist[s];
    d[s] = 0;
    using Item = std::pair<int64_t, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    pq.push({0, s});
    while (!pq.empty()) {
      auto [cost, u] = pq.top();
      pq.pop();
      if (cost > d[u]) continue;
      for (auto [v, w] : adj[u]) {
        if (cost + w < d[v]) {
          d[v] = cost + w;
          pq.push({d[v], v});
        }
      }
    }
  }
  return dist;
}

Bytes SerializeTuples(const std::vector<Tuple>& tuples) {
  ByteWriter w;
  for (const Tuple& t : tuples) t.Serialize(w);
  return std::move(w).Take();
}

// --- Golden: Best-Path against Dijkstra ------------------------------------

TEST(SlotEvalGoldenTest, BestPathMatchesDijkstra) {
  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(16, 3, rng);
  std::unique_ptr<Engine> e =
      FixpointEngine(topo, BestPathNdlogProgram(), EngineOptions{});
  std::vector<std::vector<int64_t>> dist = Dijkstra(topo);

  size_t checked = 0;
  for (NodeId s = 0; s < topo.num_nodes; ++s) {
    for (const Tuple& t : e->TuplesAt(s, "bestPathCost")) {
      ASSERT_EQ(t.arity(), 3u);
      NodeId d = t.arg(1).AsAddress();
      EXPECT_EQ(t.arg(2).AsInt(), dist[s][d])
          << "bestPathCost(" << s << ", " << d << ")";
      ++checked;
    }
    // Every reachable destination must be present.
    size_t reachable = 0;
    for (NodeId d = 0; d < topo.num_nodes; ++d) {
      if (d != s && dist[s][d] != std::numeric_limits<int64_t>::max()) {
        ++reachable;
      }
    }
    EXPECT_EQ(e->TuplesAt(s, "bestPathCost").size(), reachable);
    // bestPath carries the same cost and a path whose endpoints match.
    for (const Tuple& t : e->TuplesAt(s, "bestPath")) {
      ASSERT_EQ(t.arity(), 4u);
      NodeId d = t.arg(1).AsAddress();
      EXPECT_EQ(t.arg(3).AsInt(), dist[s][d]);
      const std::vector<Value>& path = t.arg(2).AsList();
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front().AsAddress(), s);
      EXPECT_EQ(path.back().AsAddress(), d);
    }
  }
  EXPECT_GT(checked, 0u);
}

// --- Golden: provenance modes are observationally identical ----------------

TEST(SlotEvalGoldenTest, ProvModesProduceByteIdenticalFixpoints) {
  Rng rng(7);
  Topology topo = Topology::RingPlusRandom(12, 3, rng);
  const ProvMode modes[] = {ProvMode::kNone, ProvMode::kCondensed,
                            ProvMode::kFull};
  std::vector<RunStats> stats(3);
  std::vector<std::unique_ptr<Engine>> engines;
  for (int i = 0; i < 3; ++i) {
    EngineOptions opts;
    opts.prov_mode = modes[i];
    if (modes[i] != ProvMode::kNone) opts.prov_grain = ProvGrain::kTuple;
    engines.push_back(
        FixpointEngine(topo, BestPathNdlogProgram(), opts, &stats[i]));
  }
  // Derivation counts are a property of the program and database, not the
  // provenance bookkeeping.
  EXPECT_EQ(stats[0].derivations, stats[1].derivations);
  EXPECT_EQ(stats[0].derivations, stats[2].derivations);
  EXPECT_EQ(stats[0].join_candidates, stats[1].join_candidates);
  for (const char* pred : {"link", "path", "bestPathCost", "bestPath"}) {
    for (NodeId n = 0; n < topo.num_nodes; ++n) {
      std::vector<Tuple> baseline = engines[0]->TuplesAt(n, pred);
      for (int i = 1; i < 3; ++i) {
        std::vector<Tuple> other = engines[i]->TuplesAt(n, pred);
        ASSERT_EQ(baseline, other)
            << pred << " at node " << n << " differs in mode "
            << ProvModeName(modes[i]);
        EXPECT_EQ(SerializeTuples(baseline), SerializeTuples(other));
      }
    }
  }
}

TEST(SlotEvalGoldenTest, RerunsAreDeterministic) {
  Rng rng(11);
  Topology topo = Topology::RingPlusRandom(10, 3, rng);
  RunStats a_stats, b_stats;
  std::unique_ptr<Engine> a =
      FixpointEngine(topo, BestPathNdlogProgram(), EngineOptions{}, &a_stats);
  std::unique_ptr<Engine> b =
      FixpointEngine(topo, BestPathNdlogProgram(), EngineOptions{}, &b_stats);
  EXPECT_EQ(a_stats.derivations, b_stats.derivations);
  EXPECT_EQ(a_stats.events, b_stats.events);
  for (NodeId n = 0; n < topo.num_nodes; ++n) {
    EXPECT_EQ(a->TuplesAt(n, "bestPath"), b->TuplesAt(n, "bestPath"));
  }
}

// --- Golden: aggregates ----------------------------------------------------

TEST(SlotEvalGoldenTest, CountAggregateMatchesOutdegree) {
  // degree(@S, count<D>) counts each node's distinct outgoing links.
  Rng rng(3);
  Topology topo = Topology::RingPlusRandom(8, 3, rng);
  const std::string source = R"(
    d1 degree(@S, count<D>) :- link(@S, D, C).
  )";
  std::unique_ptr<Engine> e =
      FixpointEngine(topo, source, EngineOptions{});
  std::vector<int64_t> outdegree(topo.num_nodes, 0);
  for (const TopoEdge& edge : topo.edges) ++outdegree[edge.from];
  for (NodeId n = 0; n < topo.num_nodes; ++n) {
    std::vector<Tuple> degrees = e->TuplesAt(n, "degree");
    ASSERT_EQ(degrees.size(), 1u) << "node " << n;
    EXPECT_EQ(degrees[0].arg(1).AsInt(), outdegree[n]) << "node " << n;
  }
}

// --- Golden: says dialect vs. NDlog ----------------------------------------

TEST(SlotEvalGoldenTest, SendlogClosureMatchesNdlogClosure) {
  // The same reachability fixpoint expressed in both dialects must agree
  // tuple-for-tuple (the says-authenticated rules add tags, not tuples).
  Topology topo;
  topo.num_nodes = 5;
  topo.edges = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {2, 3, 1}, {3, 4, 1}};
  auto insert_links = [&](Engine& e) {
    for (const TopoEdge& edge : topo.edges) {
      Tuple link("link", {Value::Address(edge.from), Value::Address(edge.to)});
      ASSERT_TRUE(e.InsertFact(edge.from, link).ok());
    }
  };

  Result<std::unique_ptr<Engine>> nd =
      Engine::Create(topo, ReachableNdlogProgram(), EngineOptions{});
  ASSERT_TRUE(nd.ok()) << nd.status();
  insert_links(*nd.value());
  ASSERT_TRUE(nd.value()->Run().ok());

  EngineOptions says_opts;
  says_opts.authenticate = true;
  says_opts.says_level = SaysLevel::kHmac;
  Result<std::unique_ptr<Engine>> sd =
      Engine::Create(topo, ReachableSendlogProgram(), says_opts);
  ASSERT_TRUE(sd.ok()) << sd.status();
  insert_links(*sd.value());
  ASSERT_TRUE(sd.value()->Run().ok());

  for (NodeId n = 0; n < topo.num_nodes; ++n) {
    EXPECT_EQ(nd.value()->TuplesAt(n, "reachable"),
              sd.value()->TuplesAt(n, "reachable"))
        << "node " << n;
  }
}

// --- Zero-copy join core ---------------------------------------------------

TEST(SlotEvalGoldenTest, JoinCoreCopiesNoCandidates) {
  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(20, 3, rng);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kTuple;
  Result<std::unique_ptr<Engine>> engine =
      Engine::Create(topo, BestPathNdlogProgram(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine.value()->InsertLinkFacts().ok());

  StoredTuple::ResetCopyCount();
  Result<RunStats> stats = engine.value()->Run();
  ASSERT_TRUE(stats.ok()) << stats.status();
  uint64_t copies = StoredTuple::CopyCount();

  // The join core must perform zero per-candidate copies: the only copies
  // during a pure-insert fixpoint are the one delta snapshot per event
  // (tables mutate between strands, not during scans). Per-candidate
  // copying (the seed behavior) would add one copy per join_candidate on
  // top of the per-event snapshot.
  EXPECT_GT(stats.value().join_candidates, 0u);
  EXPECT_LE(copies, stats.value().events + 16);
}

// --- Column indexes across mutations ----------------------------------------

Tuple Pair(int64_t a, int64_t b) {
  return Tuple("t", {Value::Int(a), Value::Int(b)});
}

StoredTuple Entry(Tuple t, double expires_at = -1.0) {
  StoredTuple e;
  e.tuple = std::move(t);
  e.expires_at = expires_at;
  return e;
}

TEST(TableIndexTest, LookupByColumnSurvivesRemoveAndExpire) {
  Table table("t", TableOptions{});
  for (int64_t i = 0; i < 10; ++i) {
    table.Insert(Entry(Pair(i % 2, i), /*expires_at=*/i < 4 ? 1.0 : -1.0),
                 0.0);
  }
  // Build the index, then mutate.
  EXPECT_EQ(table.LookupByColumn(0, Value::Int(0)).size(), 5u);
  EXPECT_EQ(table.LookupByColumn(0, Value::Int(1)).size(), 5u);

  ASSERT_TRUE(table.Remove(Pair(0, 8)).has_value());
  EXPECT_EQ(table.LookupByColumn(0, Value::Int(0)).size(), 4u);

  // Expiry drops tuples 0..3 (two per parity).
  std::vector<StoredTuple> expired = table.ExpireBefore(2.0);
  EXPECT_EQ(expired.size(), 4u);
  EXPECT_EQ(table.LookupByColumn(0, Value::Int(0)).size(), 2u);
  EXPECT_EQ(table.LookupByColumn(0, Value::Int(1)).size(), 3u);

  // Inserts after the index exists are visible.
  table.Insert(Entry(Pair(0, 100)), 3.0);
  EXPECT_EQ(table.LookupByColumn(0, Value::Int(0)).size(), 3u);
  for (const StoredTuple* e : table.LookupByColumn(0, Value::Int(0))) {
    EXPECT_EQ(e->tuple.arg(0).AsInt(), 0);
  }
}

TEST(TableIndexTest, CompositeIndexMatchesScanFilter) {
  Table table("t", TableOptions{});
  for (int64_t a = 0; a < 4; ++a) {
    for (int64_t b = 0; b < 4; ++b) {
      table.Insert(Entry(Tuple(
                       "t", {Value::Int(a), Value::Int(b), Value::Int(a + b)})),
                   0.0);
    }
  }
  Value va = Value::Int(2);
  Value vc = Value::Int(3);
  Table::ColumnEq eqs[] = {{0, &va}, {2, &vc}};
  std::vector<Tuple> found;
  ASSERT_TRUE(table
                  .ForEachByColumns(eqs, 2,
                                    [&](const StoredTuple& e) {
                                      found.push_back(e.tuple);
                                      return OkStatus();
                                    })
                  .ok());
  ASSERT_EQ(found.size(), 1u);  // a=2, c=3 => b=1
  EXPECT_EQ(found[0].arg(1).AsInt(), 1);

  // Mutations keep the composite index consistent too.
  ASSERT_TRUE(table.Remove(found[0]).has_value());
  size_t count = 0;
  ASSERT_TRUE(table
                  .ForEachByColumns(eqs, 2,
                                    [&](const StoredTuple&) {
                                      ++count;
                                      return OkStatus();
                                    })
                  .ok());
  EXPECT_EQ(count, 0u);
}

TEST(TableIndexTest, AggregateReplaceKeepsIndexConsistent) {
  TableOptions opts;
  opts.agg = AggKind::kMin;
  opts.agg_column = 1;
  opts.key_columns = {0};
  Table table("m", opts);
  table.Insert(Entry(Pair(1, 10)), 0.0);
  table.Insert(Entry(Pair(1, 5)), 0.0);   // improves the group
  table.Insert(Entry(Pair(1, 9)), 0.0);   // rejected
  EXPECT_EQ(table.LookupByColumn(1, Value::Int(10)).size(), 0u);
  EXPECT_EQ(table.LookupByColumn(1, Value::Int(9)).size(), 0u);
  ASSERT_EQ(table.LookupByColumn(1, Value::Int(5)).size(), 1u);
  EXPECT_EQ(table.LookupByColumn(0, Value::Int(1)).size(), 1u);
}

}  // namespace
}  // namespace provnet
