#include <gtest/gtest.h>

#include <set>

#include "util/bytes.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"

namespace provnet {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad tuple");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tuple");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(InvalidArgumentError("").code());
  codes.insert(NotFoundError("").code());
  codes.insert(AlreadyExistsError("").code());
  codes.insert(FailedPreconditionError("").code());
  codes.insert(OutOfRangeError("").code());
  codes.insert(UnimplementedError("").code());
  codes.insert(InternalError("").code());
  codes.insert(UnauthenticatedError("").code());
  codes.insert(PermissionDeniedError("").code());
  codes.insert(ResourceExhaustedError("").code());
  codes.insert(DeadlineExceededError("").code());
  EXPECT_EQ(codes.size(), 11u);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return InvalidArgumentError("not positive");
  return v;
}

Result<int> DoubleIfPositive(int v) {
  PROVNET_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = DoubleIfPositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = DoubleIfPositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- Bytes ------------------------------------------------------------------

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutDouble(3.25);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU16().value(), 0x1234);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetDouble().value(), 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTrip) {
  ByteWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1ULL << 21, 1ULL << 35,
                             UINT64_MAX};
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.bytes());
  for (uint64_t v : values) EXPECT_EQ(r.GetVarint().value(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, SignedZigzagRoundTrip) {
  ByteWriter w;
  const int64_t values[] = {0, -1, 1, -2, 63, -64, INT64_MAX, INT64_MIN};
  for (int64_t v : values) w.PutI64(v);
  ByteReader r(w.bytes());
  for (int64_t v : values) EXPECT_EQ(r.GetI64().value(), v);
}

TEST(BytesTest, SmallNegativesAreShort) {
  ByteWriter w;
  w.PutI64(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(BytesTest, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.PutString("hello provenance");
  w.PutBlob({0x00, 0xFF, 0x7F});
  w.PutString("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetString().value(), "hello provenance");
  EXPECT_EQ(r.GetBlob().value(), Bytes({0x00, 0xFF, 0x7F}));
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncatedReadsFail) {
  ByteWriter w;
  w.PutU32(42);
  ByteReader r(w.bytes());
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_FALSE(r.GetU8().ok());
  EXPECT_EQ(r.GetU8().status().code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(BytesTest, MalformedVarintFails) {
  Bytes bad(11, 0x80);  // never terminates within 64 bits
  ByteReader r(bad);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0xDE, 0xAD, 0x00, 0x01};
  EXPECT_EQ(BytesToHex(data), "dead0001");
  EXPECT_EQ(HexToBytes("dead0001").value(), data);
  EXPECT_EQ(HexToBytes("DEAD0001").value(), data);
  EXPECT_FALSE(HexToBytes("abc").ok());
  EXPECT_FALSE(HexToBytes("zz").ok());
}

// --- Hash -------------------------------------------------------------------

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(std::string("")), 0xcbf29ce484222325ULL);
  // Differing strings hash differently.
  EXPECT_NE(Fnv1a64(std::string("link(a,b)")), Fnv1a64(std::string("link(a,c)")));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashTest, Mix64Avalanches) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(0), 0u);
}

// --- Random -----------------------------------------------------------------

TEST(RandomTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RandomTest, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RandomTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

// --- Strings ----------------------------------------------------------------

TEST(StringsTest, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit(",a", ','), (std::vector<std::string>{"", "a"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"x", "y", "z"}, "->"), "x->y->z");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  hi\t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("x"), "x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("reachable(a,c)", "reach"));
  EXPECT_FALSE(StartsWith("re", "reach"));
  EXPECT_TRUE(EndsWith("bestPath", "Path"));
  EXPECT_FALSE(EndsWith("Path", "bestPath"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("n=%d t=%.2f s=%s", 5, 1.5, "x"), "n=5 t=1.50 s=x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

}  // namespace
}  // namespace provnet
