#include <gtest/gtest.h>

#include "bdd/bdd.h"

namespace provnet {
namespace {

using Cubes = std::vector<std::vector<uint32_t>>;

TEST(BddTest, Terminals) {
  BddManager mgr;
  EXPECT_EQ(mgr.False(), kBddFalse);
  EXPECT_EQ(mgr.True(), kBddTrue);
  EXPECT_TRUE(mgr.IsTerminal(kBddFalse));
  EXPECT_TRUE(mgr.IsTerminal(kBddTrue));
}

TEST(BddTest, VarStructure) {
  BddManager mgr;
  BddRef x = mgr.Var(0);
  EXPECT_FALSE(mgr.IsTerminal(x));
  EXPECT_EQ(mgr.TopVar(x), 0u);
  EXPECT_EQ(mgr.Low(x), kBddFalse);
  EXPECT_EQ(mgr.High(x), kBddTrue);
}

TEST(BddTest, HashConsing) {
  BddManager mgr;
  EXPECT_EQ(mgr.Var(3), mgr.Var(3));
  EXPECT_NE(mgr.Var(3), mgr.Var(4));
  BddRef a = mgr.And(mgr.Var(0), mgr.Var(1));
  BddRef b = mgr.And(mgr.Var(0), mgr.Var(1));
  EXPECT_EQ(a, b);
}

TEST(BddTest, BooleanIdentities) {
  BddManager mgr;
  BddRef x = mgr.Var(0), y = mgr.Var(1);
  EXPECT_EQ(mgr.And(x, kBddTrue), x);
  EXPECT_EQ(mgr.And(x, kBddFalse), kBddFalse);
  EXPECT_EQ(mgr.Or(x, kBddFalse), x);
  EXPECT_EQ(mgr.Or(x, kBddTrue), kBddTrue);
  EXPECT_EQ(mgr.And(x, x), x);
  EXPECT_EQ(mgr.Or(x, x), x);
  EXPECT_EQ(mgr.Not(mgr.Not(x)), x);
  EXPECT_EQ(mgr.And(x, y), mgr.And(y, x));
  EXPECT_EQ(mgr.Or(x, y), mgr.Or(y, x));
  EXPECT_EQ(mgr.Xor(x, x), kBddFalse);
  EXPECT_EQ(mgr.Xor(x, kBddFalse), x);
}

TEST(BddTest, ComplementationLaws) {
  BddManager mgr;
  BddRef x = mgr.Var(0);
  EXPECT_EQ(mgr.And(x, mgr.Not(x)), kBddFalse);
  EXPECT_EQ(mgr.Or(x, mgr.Not(x)), kBddTrue);
}

TEST(BddTest, DeMorgan) {
  BddManager mgr;
  BddRef x = mgr.Var(0), y = mgr.Var(1);
  EXPECT_EQ(mgr.Not(mgr.And(x, y)), mgr.Or(mgr.Not(x), mgr.Not(y)));
  EXPECT_EQ(mgr.Not(mgr.Or(x, y)), mgr.And(mgr.Not(x), mgr.Not(y)));
}

TEST(BddTest, AbsorptionIsCanonical) {
  // The motivating identity for condensed provenance: a + a*b == a.
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1);
  EXPECT_EQ(mgr.Or(a, mgr.And(a, b)), a);
  // Dually a * (a + b) == a.
  EXPECT_EQ(mgr.And(a, mgr.Or(a, b)), a);
}

TEST(BddTest, Distribution) {
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1), c = mgr.Var(2);
  EXPECT_EQ(mgr.And(a, mgr.Or(b, c)),
            mgr.Or(mgr.And(a, b), mgr.And(a, c)));
}

TEST(BddTest, IteBasis) {
  BddManager mgr;
  BddRef f = mgr.Var(0), g = mgr.Var(1), h = mgr.Var(2);
  // ite(f,g,h) == (f & g) | (!f & h).
  EXPECT_EQ(mgr.Ite(f, g, h),
            mgr.Or(mgr.And(f, g), mgr.And(mgr.Not(f), h)));
}

TEST(BddTest, EvalTruthTable) {
  BddManager mgr;
  BddRef f = mgr.Or(mgr.And(mgr.Var(0), mgr.Var(1)), mgr.Var(2));
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        std::unordered_map<uint32_t, bool> env = {
            {0, a != 0}, {1, b != 0}, {2, c != 0}};
        EXPECT_EQ(mgr.Eval(f, env), (a && b) || c);
      }
    }
  }
}

TEST(BddTest, EvalDefaultsMissingVarsToFalse) {
  BddManager mgr;
  BddRef f = mgr.Var(5);
  EXPECT_FALSE(mgr.Eval(f, {}));
}

TEST(BddTest, RestrictCofactors) {
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1);
  BddRef f = mgr.Or(a, mgr.And(mgr.Not(a), b));  // a | (!a & b) == a | b
  EXPECT_EQ(mgr.Restrict(f, 0, true), kBddTrue);
  EXPECT_EQ(mgr.Restrict(f, 0, false), b);
  EXPECT_EQ(mgr.Restrict(f, 7, true), f);  // absent variable: unchanged
}

TEST(BddTest, ExistsQuantification) {
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1);
  BddRef f = mgr.And(a, b);
  EXPECT_EQ(mgr.Exists(f, 0), b);
  EXPECT_EQ(mgr.Exists(mgr.Exists(f, 0), 1), kBddTrue);
  EXPECT_EQ(mgr.Exists(kBddFalse, 0), kBddFalse);
}

TEST(BddTest, SatCount) {
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1), c = mgr.Var(2);
  EXPECT_EQ(mgr.SatCount(kBddFalse, 3), 0.0);
  EXPECT_EQ(mgr.SatCount(kBddTrue, 3), 8.0);
  EXPECT_EQ(mgr.SatCount(a, 3), 4.0);
  EXPECT_EQ(mgr.SatCount(mgr.And(a, b), 3), 2.0);
  EXPECT_EQ(mgr.SatCount(mgr.Or(mgr.And(a, b), c), 3), 5.0);
  // Var order should not matter for counting.
  EXPECT_EQ(mgr.SatCount(mgr.And(b, c), 3), 2.0);
}

TEST(BddTest, NodeCountShared) {
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1);
  EXPECT_EQ(mgr.NodeCount(kBddTrue), 0u);
  EXPECT_EQ(mgr.NodeCount(a), 1u);
  BddRef f = mgr.And(a, b);
  EXPECT_EQ(mgr.NodeCount(f), 2u);
}

TEST(BddTest, Support) {
  BddManager mgr;
  BddRef f = mgr.Or(mgr.And(mgr.Var(2), mgr.Var(5)), mgr.Var(9));
  EXPECT_EQ(mgr.Support(f), (std::vector<uint32_t>{2, 5, 9}));
  EXPECT_TRUE(mgr.Support(kBddTrue).empty());
}

TEST(BddTest, MonotoneCubesAbsorption) {
  // <a + a*b> condenses to <a>.
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1);
  BddRef f = mgr.Or(a, mgr.And(a, b));
  EXPECT_EQ(mgr.MonotoneCubes(f), (Cubes{{0}}));
}

TEST(BddTest, MonotoneCubesUnionOfJoins) {
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1), c = mgr.Var(2);
  // a*b + c: two minimal witness sets.
  BddRef f = mgr.Or(mgr.And(a, b), c);
  EXPECT_EQ(mgr.MonotoneCubes(f), (Cubes{{0, 1}, {2}}));
}

TEST(BddTest, MonotoneCubesDropsDominatedAcrossBranches) {
  BddManager mgr;
  BddRef a = mgr.Var(0), b = mgr.Var(1), c = mgr.Var(2);
  // a*b + a*b*c + b*c -> {a,b}, {b,c}.
  BddRef f = mgr.Or(mgr.Or(mgr.And(a, b), mgr.And(mgr.And(a, b), c)),
                    mgr.And(b, c));
  EXPECT_EQ(mgr.MonotoneCubes(f), (Cubes{{0, 1}, {1, 2}}));
}

TEST(BddTest, MonotoneCubesTerminals) {
  BddManager mgr;
  EXPECT_EQ(mgr.MonotoneCubes(kBddFalse), Cubes{});
  EXPECT_EQ(mgr.MonotoneCubes(kBddTrue), (Cubes{{}}));
}

TEST(BddTest, ChainConjunctionScalesLinearly) {
  BddManager mgr;
  BddRef f = kBddTrue;
  for (uint32_t v = 0; v < 64; ++v) f = mgr.And(f, mgr.Var(v));
  EXPECT_EQ(mgr.NodeCount(f), 64u);
  EXPECT_EQ(mgr.SatCount(f, 64), 1.0);
}

// Property sweep: for random monotone functions built from k cubes over n
// vars, every reported minimal cube satisfies f and no proper subset does.
class BddMonotonePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(BddMonotonePropertySweep, CubesAreMinimalWitnesses) {
  const int seed = GetParam();
  BddManager mgr;
  // Deterministic pseudo-random cube construction (no Rng dependency).
  uint64_t state = 0x9e3779b97f4a7c15ULL * (seed + 1);
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  constexpr uint32_t kVars = 10;
  BddRef f = kBddFalse;
  for (int cube = 0; cube < 6; ++cube) {
    BddRef term = kBddTrue;
    for (uint32_t v = 0; v < kVars; ++v) {
      if (next() % 3 == 0) term = mgr.And(term, mgr.Var(v));
    }
    f = mgr.Or(f, term);
  }
  for (const auto& cube : mgr.MonotoneCubes(f)) {
    std::unordered_map<uint32_t, bool> env;
    for (uint32_t v : cube) env[v] = true;
    EXPECT_TRUE(mgr.Eval(f, env));
    // Dropping any single variable must falsify f (minimality).
    for (uint32_t v : cube) {
      env[v] = false;
      EXPECT_FALSE(mgr.Eval(f, env)) << "cube not minimal at var " << v;
      env[v] = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddMonotonePropertySweep,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace provnet
