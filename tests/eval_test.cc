#include <gtest/gtest.h>

#include "core/eval.h"
#include "datalog/parser.h"

namespace provnet {
namespace {

// --- Builtins ------------------------------------------------------------------

TEST(BuiltinTest, PathVectorFunctions) {
  Value init = CallBuiltin("f_init", {Value::Address(0), Value::Address(1)})
                   .value();
  EXPECT_EQ(init.ToString(), "[@0, @1]");

  Value extended =
      CallBuiltin("f_concatPath", {Value::Address(5), init}).value();
  EXPECT_EQ(extended.ToString(), "[@5, @0, @1]");

  Value appended = CallBuiltin("f_append", {init, Value::Address(9)}).value();
  EXPECT_EQ(appended.ToString(), "[@0, @1, @9]");

  EXPECT_EQ(CallBuiltin("f_member", {extended, Value::Address(0)})
                .value()
                .AsInt(),
            1);
  EXPECT_EQ(CallBuiltin("f_member", {extended, Value::Address(7)})
                .value()
                .AsInt(),
            0);
  EXPECT_EQ(CallBuiltin("f_size", {extended}).value().AsInt(), 3);
  EXPECT_EQ(CallBuiltin("f_first", {extended}).value().AsAddress(), 5u);
  EXPECT_EQ(CallBuiltin("f_last", {extended}).value().AsAddress(), 1u);
}

TEST(BuiltinTest, MinMax) {
  EXPECT_EQ(CallBuiltin("f_min", {Value::Int(3), Value::Int(7)})
                .value()
                .AsInt(),
            3);
  EXPECT_EQ(CallBuiltin("f_max", {Value::Int(3), Value::Int(7)})
                .value()
                .AsInt(),
            7);
}

TEST(BuiltinTest, Errors) {
  EXPECT_FALSE(CallBuiltin("f_unknown", {}).ok());
  EXPECT_FALSE(CallBuiltin("f_size", {}).ok());                 // arity
  EXPECT_FALSE(CallBuiltin("f_size", {Value::Int(3)}).ok());    // not a list
  EXPECT_FALSE(CallBuiltin("f_first", {Value::List({})}).ok()); // empty
  EXPECT_FALSE(
      CallBuiltin("f_member", {Value::Int(1), Value::Int(1)}).ok());
}

// --- Terms and expressions -------------------------------------------------------

Expr ParseCondition(const std::string& text) {
  // Wrap in a rule to reuse the parser.
  Rule r = ParseRule("p(@S) :- q(@S), " + text + ".").value();
  return r.body[1].expr;
}

TEST(EvalTest, TermEvaluation) {
  Env env = {{"X", Value::Int(4)}, {"P", Value::List({Value::Int(1)})}};
  EXPECT_EQ(EvalTerm(Term::Var("X"), env).value().AsInt(), 4);
  EXPECT_EQ(EvalTerm(Term::Const(Value::Str("k")), env).value().AsString(),
            "k");
  EXPECT_FALSE(EvalTerm(Term::Var("Missing"), env).ok());
  Term call = Term::Func("f_size", {Term::Var("P")});
  EXPECT_EQ(EvalTerm(call, env).value().AsInt(), 1);
}

TEST(EvalTest, ArithmeticKeepsInts) {
  Env env = {{"A", Value::Int(7)}, {"B", Value::Int(2)}};
  Rule r = ParseRule("p(@S,X) :- q(@S), X := A * B + 1.").value();
  const Expr& expr = r.body[1].expr;
  Value v = EvalExpr(expr, env).value();
  EXPECT_EQ(v.kind(), ValueKind::kInt);
  EXPECT_EQ(v.AsInt(), 15);
}

TEST(EvalTest, ArithmeticWidensToDouble) {
  Env env = {{"A", Value::Int(7)}, {"B", Value::Real(0.5)}};
  Rule r = ParseRule("p(@S,X) :- q(@S), X := A * B.").value();
  Value v = EvalExpr(r.body[1].expr, env).value();
  EXPECT_EQ(v.kind(), ValueKind::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
}

TEST(EvalTest, DivisionByZeroFails) {
  Env env = {{"A", Value::Int(7)}, {"B", Value::Int(0)}};
  Rule r = ParseRule("p(@S,X) :- q(@S), X := A / B.").value();
  EXPECT_FALSE(EvalExpr(r.body[1].expr, env).ok());
  Rule m = ParseRule("p(@S,X) :- q(@S), X := A % B.").value();
  EXPECT_FALSE(EvalExpr(m.body[1].expr, env).ok());
}

TEST(EvalTest, Comparisons) {
  Env env = {{"C", Value::Int(5)}};
  EXPECT_TRUE(EvalCondition(ParseCondition("C < 10"), env).value());
  EXPECT_FALSE(EvalCondition(ParseCondition("C > 10"), env).value());
  EXPECT_TRUE(EvalCondition(ParseCondition("C == 5"), env).value());
  EXPECT_TRUE(EvalCondition(ParseCondition("C != 4"), env).value());
  EXPECT_TRUE(EvalCondition(ParseCondition("C >= 5"), env).value());
  EXPECT_TRUE(EvalCondition(ParseCondition("C <= 5"), env).value());
}

TEST(EvalTest, OperatorPrecedence) {
  Env env;
  EXPECT_TRUE(
      EvalCondition(ParseCondition("2 + 3 * 4 == 14"), env).value());
  EXPECT_TRUE(
      EvalCondition(ParseCondition("(2 + 3) * 4 == 20"), env).value());
  EXPECT_TRUE(EvalCondition(ParseCondition("10 % 3 == 1"), env).value());
}

// --- Unification -------------------------------------------------------------------

TEST(UnifyTest, BindsFreshVariables) {
  Rule r = ParseRule("p(@S) :- link(@S,D,C).").value();
  const Atom& atom = r.body[0].atom;
  Tuple t("link", {Value::Address(0), Value::Address(1), Value::Int(5)});
  Env env;
  ASSERT_TRUE(UnifyTuple(atom, t, env));
  EXPECT_EQ(env.at("S").AsAddress(), 0u);
  EXPECT_EQ(env.at("D").AsAddress(), 1u);
  EXPECT_EQ(env.at("C").AsInt(), 5);
}

TEST(UnifyTest, RespectsExistingBindings) {
  Rule r = ParseRule("p(@S) :- link(@S,D).").value();
  const Atom& atom = r.body[0].atom;
  Tuple t("link", {Value::Address(0), Value::Address(1)});
  Env env = {{"S", Value::Address(0)}};
  EXPECT_TRUE(UnifyTuple(atom, t, env));
  env = {{"S", Value::Address(9)}};
  EXPECT_FALSE(UnifyTuple(atom, t, env));
}

TEST(UnifyTest, ConstantsMustMatch) {
  Rule r = ParseRule("p(@S) :- link(@S, 7).").value();
  const Atom& atom = r.body[0].atom;
  Env env;
  EXPECT_TRUE(UnifyTuple(atom, Tuple("link", {Value::Address(0),
                                              Value::Int(7)}),
                         env));
  Env env2;
  EXPECT_FALSE(UnifyTuple(atom, Tuple("link", {Value::Address(0),
                                               Value::Int(8)}),
                          env2));
}

TEST(UnifyTest, RepeatedVariableActsAsSelfJoinFilter) {
  Rule r = ParseRule("p(@S) :- edge(@S, X, X).").value();
  const Atom& atom = r.body[0].atom;
  Env env;
  EXPECT_TRUE(UnifyTuple(
      atom, Tuple("edge", {Value::Address(0), Value::Int(3), Value::Int(3)}),
      env));
  Env env2;
  EXPECT_FALSE(UnifyTuple(
      atom, Tuple("edge", {Value::Address(0), Value::Int(3), Value::Int(4)}),
      env2));
}

TEST(UnifyTest, MismatchedPredicateOrArity) {
  Rule r = ParseRule("p(@S) :- link(@S,D).").value();
  const Atom& atom = r.body[0].atom;
  Env env;
  EXPECT_FALSE(UnifyTuple(atom, Tuple("hop", {Value::Address(0),
                                              Value::Address(1)}),
                          env));
  EXPECT_FALSE(UnifyTuple(atom, Tuple("link", {Value::Address(0)}), env));
}

// --- Head construction ---------------------------------------------------------------

TEST(HeadTest, BuildsWithFunctionsAndConstants) {
  Rule r = ParseRule("out(@S, f_size(P), 42, D) :- q(@S, P, D).").value();
  Env env = {{"S", Value::Address(1)},
             {"P", Value::List({Value::Int(1), Value::Int(2)})},
             {"D", Value::Address(3)}};
  Tuple head = BuildHeadTuple(r.head, env).value();
  EXPECT_EQ(head.ToString(), "out(@1, 2, 42, @3)");
}

TEST(HeadTest, AggregatePlaceholderTakesVariableValue) {
  Rule r = ParseRule("cost(@S, D, min<C>) :- path(@S, D, C).").value();
  Env env = {{"S", Value::Address(0)}, {"D", Value::Address(1)},
             {"C", Value::Int(17)}};
  Tuple head = BuildHeadTuple(r.head, env).value();
  EXPECT_EQ(head.arg(2).AsInt(), 17);  // aggregation happens at the table
}

}  // namespace
}  // namespace provnet
