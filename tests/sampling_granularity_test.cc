#include <gtest/gtest.h>

#include "provenance/granularity.h"
#include "provenance/sampling.h"

namespace provnet {
namespace {

// --- TupleSampler ---------------------------------------------------------------

TEST(SamplerTest, KOneRecordsEverything) {
  TupleSampler sampler(1, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(sampler.ShouldRecord(static_cast<TupleDigest>(i)));
  }
}

TEST(SamplerTest, RateApproximatesOneOverK) {
  for (uint32_t k : {2u, 4u, 16u}) {
    TupleSampler sampler(k, 7);
    int recorded = 0;
    const int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) {
      if (sampler.ShouldRecord(static_cast<TupleDigest>(i) * 2654435761u)) {
        ++recorded;
      }
    }
    double rate = static_cast<double>(recorded) / kTrials;
    EXPECT_NEAR(rate, 1.0 / k, 0.25 / k) << "k=" << k;
  }
}

TEST(SamplerTest, DeterministicPerTuple) {
  TupleSampler a(4, 9), b(4, 9);
  Tuple t("x", {Value::Int(5)});
  EXPECT_EQ(a.ShouldRecord(t), b.ShouldRecord(t));
}

TEST(SamplerTest, SeedDecorrelates) {
  TupleSampler a(2, 1), b(2, 2);
  int differ = 0;
  for (int i = 0; i < 1000; ++i) {
    TupleDigest d = static_cast<TupleDigest>(i) * 0x9E3779B97F4A7C15ULL;
    if (a.ShouldRecord(d) != b.ShouldRecord(d)) ++differ;
  }
  EXPECT_GT(differ, 200);
}

// --- BloomFilter -----------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter filter(4096, 4);
  for (uint64_t i = 0; i < 200; ++i) filter.Insert(i * 7919);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(filter.MayContain(i * 7919));
  }
}

TEST(BloomTest, FalsePositiveRateReasonable) {
  BloomFilter filter(8192, 4);
  for (uint64_t i = 0; i < 500; ++i) filter.Insert(i);
  int fp = 0;
  const int kProbes = 5000;
  for (uint64_t i = 1000000; i < 1000000 + kProbes; ++i) {
    if (filter.MayContain(i)) ++fp;
  }
  // ~500 keys in 8192 bits with 4 hashes: theoretical fp ~ 2%.
  EXPECT_LT(fp, kProbes / 10);
}

TEST(BloomTest, SaturationGrowsWithInserts) {
  BloomFilter filter(1024, 4);
  double s0 = filter.Saturation();
  for (uint64_t i = 0; i < 100; ++i) filter.Insert(i);
  double s1 = filter.Saturation();
  EXPECT_EQ(s0, 0.0);
  EXPECT_GT(s1, 0.2);
  EXPECT_LE(s1, 1.0);
}

TEST(BloomTest, SerializationRoundTrip) {
  BloomFilter filter(512, 3);
  for (uint64_t i = 0; i < 50; ++i) filter.Insert(i * 31);
  ByteWriter w;
  filter.Serialize(w);
  ByteReader r(w.bytes());
  Result<BloomFilter> back = BloomFilter::Deserialize(r);
  ASSERT_TRUE(back.ok());
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(back.value().MayContain(i * 31));
  }
  EXPECT_EQ(back.value().num_hashes(), 3);
  EXPECT_EQ(back.value().bit_count(), 512u);
}

TEST(BloomTest, RoundsBitsUp) {
  BloomFilter filter(1, 1);
  EXPECT_EQ(filter.bit_count(), 64u);
}

// --- ProvDigestStore ---------------------------------------------------------------

TEST(DigestStoreTest, WindowedMembership) {
  ProvDigestStore store(10.0, 1024, 4, 0);
  store.Record(111, 5.0);    // window 0
  store.Record(222, 15.0);   // window 1
  EXPECT_TRUE(store.MayContain(111, 0.0, 10.0));
  EXPECT_TRUE(store.MayContain(222, 10.0, 20.0));
  EXPECT_FALSE(store.MayContain(111, 10.0, 20.0));
  EXPECT_EQ(store.window_count(), 2u);
}

TEST(DigestStoreTest, BoundsRetainedWindows) {
  ProvDigestStore store(1.0, 256, 2, 3);
  for (int i = 0; i < 10; ++i) {
    store.Record(static_cast<TupleDigest>(i), static_cast<double>(i));
  }
  EXPECT_EQ(store.window_count(), 3u);
  EXPECT_EQ(store.TotalBytes(), 3u * (256 / 8));
  // Old windows are gone.
  EXPECT_FALSE(store.MayContain(0, 0.0, 1.0));
  EXPECT_TRUE(store.MayContain(9, 9.0, 10.0));
}

// --- AS granularity ------------------------------------------------------------------

TEST(AsMappingTest, BlocksPartition) {
  AsMapping mapping = AsMapping::Blocks(10, 3);
  EXPECT_EQ(mapping.AsOf(0), 0u);
  EXPECT_EQ(mapping.AsOf(2), 0u);
  EXPECT_EQ(mapping.AsOf(3), 1u);
  EXPECT_EQ(mapping.AsOf(9), 3u);
  EXPECT_EQ(mapping.num_ases(), 4u);
  EXPECT_EQ(mapping.num_nodes(), 10u);
}

TEST(AsProjectionTest, CollapsesIntraAsSteps) {
  // Chain of derivations through nodes 0,1 (AS 0) then 2,3 (AS 1).
  Tuple base("link", {Value::Int(0)});
  DerivationPtr leaf = MakeBaseDerivation(base, 3, "n3", 0.0, -1.0);
  DerivationPtr step2 = MakeRuleDerivation(Tuple("p", {Value::Int(1)}), "r",
                                           2, "n2", 0.0, -1.0, {leaf});
  DerivationPtr step1 = MakeRuleDerivation(Tuple("p", {Value::Int(2)}), "r",
                                           1, "n1", 0.0, -1.0, {step2});
  DerivationPtr root = MakeRuleDerivation(Tuple("p", {Value::Int(3)}), "r",
                                          0, "n0", 0.0, -1.0, {step1});
  EXPECT_EQ(root->TreeSize(), 4u);

  AsMapping mapping = AsMapping::Blocks(4, 2);  // {0,1} -> AS0, {2,3} -> AS1
  DerivationPtr projected = ProjectDerivationToAs(root, mapping);
  // Intra-AS steps merged: root(AS0) -> step2(AS1) -> leaf(AS1 merged).
  EXPECT_LT(projected->TreeSize(), root->TreeSize());
  EXPECT_EQ(projected->location, 0u);

  std::vector<AsId> path = AsPathOf(root, mapping);
  EXPECT_EQ(path, (std::vector<AsId>{0, 1}));
}

TEST(AsProjectionTest, CondensedProjectionMergesAndMinimizes) {
  CondensedProv cond;
  cond.cubes = {{0, 1, 2}, {0, 3}};
  // Vars 0,1 -> AS 100; vars 2,3 -> AS 101.
  auto to_as = [](ProvVar v) -> ProvVar { return v < 2 ? 100 : 101; };
  CondensedProv projected = ProjectCondensedToAs(cond, to_as);
  // {0,1,2} -> {100,101}; {0,3} -> {100,101}: identical, deduplicated.
  ASSERT_EQ(projected.cubes.size(), 1u);
  EXPECT_EQ(projected.cubes[0], (std::vector<ProvVar>{100, 101}));
}

TEST(AsProjectionTest, AbsorptionAfterProjection) {
  CondensedProv cond;
  cond.cubes = {{0}, {1, 2}};
  // All map to the same AS: {A} and {A} -> single cube {A}.
  CondensedProv projected =
      ProjectCondensedToAs(cond, [](ProvVar) -> ProvVar { return 7; });
  ASSERT_EQ(projected.cubes.size(), 1u);
  EXPECT_EQ(projected.cubes[0], (std::vector<ProvVar>{7}));
}

}  // namespace
}  // namespace provnet
