#include <gtest/gtest.h>

#include "core/table.h"
#include "net/network.h"
#include "net/topology.h"
#include "util/random.h"

namespace provnet {
namespace {

// --- Network -------------------------------------------------------------------

TEST(NetworkTest, DeliversInLatencyOrder) {
  Network net(3, /*default_latency_s=*/1.0);
  net.SetLatency(0, 2, 0.1);  // fast path

  std::vector<std::pair<NodeId, NodeId>> deliveries;
  net.SetHandler([&](NodeId to, NodeId from, const Bytes&) {
    deliveries.push_back({from, to});
  });

  ASSERT_TRUE(net.Send(0, 1, {1}).ok());  // arrives t=1.0
  ASSERT_TRUE(net.Send(0, 2, {2}).ok());  // arrives t=0.1
  net.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(deliveries[1], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_DOUBLE_EQ(net.now(), 1.0);
}

TEST(NetworkTest, FifoForEqualTimes) {
  Network net(2, 0.5);
  std::vector<uint8_t> order;
  net.SetHandler([&](NodeId, NodeId, const Bytes& payload) {
    order.push_back(payload[0]);
  });
  for (uint8_t i = 0; i < 5; ++i) ASSERT_TRUE(net.Send(0, 1, {i}).ok());
  net.Run();
  EXPECT_EQ(order, (std::vector<uint8_t>{0, 1, 2, 3, 4}));
}

TEST(NetworkTest, MetersCountEveryByte) {
  Network net(2, 0.01);
  net.SetHandler([](NodeId, NodeId, const Bytes&) {});
  ASSERT_TRUE(net.Send(0, 1, Bytes(100, 0)).ok());
  ASSERT_TRUE(net.Send(1, 0, Bytes(50, 0)).ok());
  EXPECT_EQ(net.total_bytes(), 150u);
  EXPECT_EQ(net.total_messages(), 2u);
  EXPECT_EQ(net.bytes_sent_by(0), 100u);
  EXPECT_EQ(net.bytes_received_by(0), 50u);
  net.ResetMeters();
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(NetworkTest, RejectsOutOfRangeNodes) {
  Network net(2, 0.01);
  EXPECT_FALSE(net.Send(0, 7, {1}).ok());
  EXPECT_FALSE(net.Send(7, 0, {1}).ok());
}

TEST(NetworkTest, CascadedSendsFromHandler) {
  // A handler that forwards models multi-hop protocols.
  Network net(3, 0.1);
  int hops = 0;
  net.SetHandler([&](NodeId to, NodeId, const Bytes& payload) {
    ++hops;
    if (to < 2) {
      ASSERT_TRUE(net.Send(to, to + 1, payload).ok());
    }
  });
  ASSERT_TRUE(net.Send(0, 1, {42}).ok());
  net.Run();
  EXPECT_EQ(hops, 2);
  EXPECT_NEAR(net.now(), 0.2, 1e-9);
}

TEST(NetworkTest, AdvanceTimeWhenIdle) {
  Network net(1, 0.01);
  net.AdvanceTime(5.0);
  EXPECT_DOUBLE_EQ(net.now(), 5.0);
}

// --- Topology -------------------------------------------------------------------

TEST(TopologyTest, FigureAbcShape) {
  Topology t = Topology::FigureAbc();
  EXPECT_EQ(t.num_nodes, 3u);
  EXPECT_EQ(t.edges.size(), 3u);
}

TEST(TopologyTest, RandomOutDegreeExact) {
  Rng rng(5);
  Topology t = Topology::RandomOutDegree(20, 3, rng);
  EXPECT_EQ(t.edges.size(), 60u);
  EXPECT_DOUBLE_EQ(t.AverageOutDegree(), 3.0);
  // No self loops, no duplicate (from, to) pairs per node.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const TopoEdge& e : t.edges) {
    EXPECT_NE(e.from, e.to);
    EXPECT_TRUE(seen.insert({e.from, e.to}).second);
    EXPECT_GE(e.cost, 1);
    EXPECT_LE(e.cost, 10);
  }
}

TEST(TopologyTest, RingPlusRandomIsConnected) {
  Rng rng(6);
  Topology t = Topology::RingPlusRandom(15, 3, rng);
  EXPECT_EQ(t.edges.size(), 45u);
  // The ring edges guarantee strong connectivity: check i -> i+1 exists.
  for (NodeId i = 0; i < 15; ++i) {
    bool found = false;
    for (const TopoEdge& e : t.edges) {
      if (e.from == i && e.to == (i + 1) % 15) found = true;
    }
    EXPECT_TRUE(found) << "missing ring edge from " << i;
  }
}

TEST(TopologyTest, DeterministicUnderSeed) {
  Rng rng1(7), rng2(7);
  Topology a = Topology::RingPlusRandom(10, 3, rng1);
  Topology b = Topology::RingPlusRandom(10, 3, rng2);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].from, b.edges[i].from);
    EXPECT_EQ(a.edges[i].to, b.edges[i].to);
    EXPECT_EQ(a.edges[i].cost, b.edges[i].cost);
  }
}

TEST(TopologyTest, LineAndMesh) {
  EXPECT_EQ(Topology::Line(5).edges.size(), 4u);
  EXPECT_EQ(Topology::FullMesh(4).edges.size(), 12u);
}

// --- Table ---------------------------------------------------------------------

StoredTuple Entry(Tuple t) {
  StoredTuple e;
  e.tuple = std::move(t);
  return e;
}

TEST(TableTest, SetSemanticsByDefault) {
  Table table("t", TableOptions{});
  Tuple t("x", {Value::Int(1), Value::Int(2)});
  EXPECT_EQ(table.Insert(Entry(t), 0.0).outcome, InsertOutcome::kNew);
  EXPECT_EQ(table.Insert(Entry(t), 1.0).outcome, InsertOutcome::kRefreshed);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_NE(table.Find(t), nullptr);
}

TEST(TableTest, KeyReplaceSemantics) {
  TableOptions opts;
  opts.key_columns = {0};
  Table table("t", opts);
  Tuple t1("route", {Value::Int(7), Value::Str("old")});
  Tuple t2("route", {Value::Int(7), Value::Str("new")});
  EXPECT_EQ(table.Insert(Entry(t1), 0.0).outcome, InsertOutcome::kNew);
  InsertResult r = table.Insert(Entry(t2), 1.0);
  EXPECT_EQ(r.outcome, InsertOutcome::kReplaced);
  EXPECT_EQ(r.stored, t2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find(t1), nullptr);
  EXPECT_NE(table.Find(t2), nullptr);
}

TEST(TableTest, MinAggregateKeepsImprovements) {
  TableOptions opts;
  opts.agg = AggKind::kMin;
  opts.agg_column = 1;
  opts.key_columns = {0};
  Table table("cost", opts);
  Tuple group0_c5("cost", {Value::Int(0), Value::Int(5)});
  Tuple group0_c3("cost", {Value::Int(0), Value::Int(3)});
  Tuple group0_c9("cost", {Value::Int(0), Value::Int(9)});

  EXPECT_EQ(table.Insert(Entry(group0_c5), 0.0).outcome, InsertOutcome::kNew);
  EXPECT_EQ(table.Insert(Entry(group0_c9), 0.0).outcome,
            InsertOutcome::kRejected);
  InsertResult improved = table.Insert(Entry(group0_c3), 0.0);
  EXPECT_EQ(improved.outcome, InsertOutcome::kReplaced);
  EXPECT_EQ(improved.stored.arg(1).AsInt(), 3);
  // Re-deriving the current minimum refreshes.
  EXPECT_EQ(table.Insert(Entry(group0_c3), 0.0).outcome,
            InsertOutcome::kRefreshed);
}

TEST(TableTest, MaxAggregate) {
  TableOptions opts;
  opts.agg = AggKind::kMax;
  opts.agg_column = 1;
  opts.key_columns = {0};
  Table table("m", opts);
  table.Insert(Entry(Tuple("m", {Value::Int(0), Value::Int(5)})), 0.0);
  EXPECT_EQ(
      table.Insert(Entry(Tuple("m", {Value::Int(0), Value::Int(9)})), 0.0)
          .outcome,
      InsertOutcome::kReplaced);
  EXPECT_EQ(
      table.Insert(Entry(Tuple("m", {Value::Int(0), Value::Int(2)})), 0.0)
          .outcome,
      InsertOutcome::kRejected);
}

TEST(TableTest, CountAggregateCountsDistinctWitnesses) {
  TableOptions opts;
  opts.agg = AggKind::kCount;
  opts.agg_column = 1;
  opts.key_columns = {0};
  Table table("c", opts);
  InsertResult r1 =
      table.Insert(Entry(Tuple("c", {Value::Int(0), Value::Int(10)})), 0.0);
  EXPECT_EQ(r1.stored.arg(1).AsInt(), 1);
  InsertResult r2 =
      table.Insert(Entry(Tuple("c", {Value::Int(0), Value::Int(20)})), 0.0);
  EXPECT_EQ(r2.outcome, InsertOutcome::kReplaced);
  EXPECT_EQ(r2.stored.arg(1).AsInt(), 2);
  // The same witness again does not bump the count.
  InsertResult r3 =
      table.Insert(Entry(Tuple("c", {Value::Int(0), Value::Int(20)})), 0.0);
  EXPECT_EQ(r3.outcome, InsertOutcome::kRefreshed);
  EXPECT_EQ(r3.stored.arg(1).AsInt(), 2);
}

TEST(TableTest, TtlExpiry) {
  TableOptions opts;
  opts.default_ttl = 10.0;
  Table table("soft", opts);
  StoredTuple first = Entry(Tuple("soft", {Value::Int(1)}));
  first.prov = ProvExpr::Var(5);
  table.Insert(std::move(first), 0.0);
  table.Insert(Entry(Tuple("soft", {Value::Int(2)})), 8.0);
  std::vector<StoredTuple> dropped = table.ExpireBefore(15.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].tuple.arg(0).AsInt(), 1);
  // Expired entries keep their provenance sidecar so expiry can fire
  // deletion deltas.
  EXPECT_EQ(dropped[0].prov.Variables(), (std::vector<ProvVar>{5}));
  EXPECT_EQ(table.size(), 1u);
}

TEST(TableTest, RefreshExtendsTtl) {
  TableOptions opts;
  opts.default_ttl = 10.0;
  Table table("soft", opts);
  Tuple t("soft", {Value::Int(1)});
  table.Insert(Entry(t), 0.0);
  table.Insert(Entry(t), 9.0);  // refresh at t=9 -> expires at 19
  EXPECT_TRUE(table.ExpireBefore(15.0).empty());
  EXPECT_EQ(table.ExpireBefore(25.0).size(), 1u);
}

TEST(TableTest, MaxSizeEvictsFifo) {
  TableOptions opts;
  opts.max_size = 3;
  Table table("bounded", opts);
  for (int i = 0; i < 5; ++i) {
    table.Insert(Entry(Tuple("bounded", {Value::Int(i)})), 0.0);
  }
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.Find(Tuple("bounded", {Value::Int(0)})), nullptr);
  EXPECT_NE(table.Find(Tuple("bounded", {Value::Int(4)})), nullptr);
}

TEST(TableTest, ColumnIndexFindsMatches) {
  Table table("t", TableOptions{});
  for (int i = 0; i < 100; ++i) {
    table.Insert(Entry(Tuple("t", {Value::Int(i % 10), Value::Int(i)})), 0.0);
  }
  auto matches = table.LookupByColumn(0, Value::Int(3));
  EXPECT_EQ(matches.size(), 10u);
  for (const StoredTuple* e : matches) {
    EXPECT_EQ(e->tuple.arg(0).AsInt(), 3);
  }
  // Index stays consistent after erase.
  EXPECT_TRUE(table.Erase(Tuple("t", {Value::Int(3), Value::Int(3)})));
  EXPECT_EQ(table.LookupByColumn(0, Value::Int(3)).size(), 9u);
}

TEST(TableTest, RemoveReturnsStoredEntryWithAnnotation) {
  Table table("t", TableOptions{});
  Tuple t("t", {Value::Int(1), Value::Int(2)});
  StoredTuple entry = Entry(t);
  entry.prov = ProvExpr::Times(ProvExpr::Var(3), ProvExpr::Var(4));
  entry.asserted_by = "alice";
  entry.origin = TupleOrigin::kLocalRule;
  entry.rule = "r7";
  table.Insert(std::move(entry), 2.5);

  std::optional<StoredTuple> removed = table.Remove(t);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->tuple, t);
  // The annotation rides along: deletion deltas carry provenance.
  EXPECT_EQ(removed->prov.Variables(), (std::vector<ProvVar>{3, 4}));
  EXPECT_EQ(removed->asserted_by, "alice");
  EXPECT_EQ(removed->origin, TupleOrigin::kLocalRule);
  EXPECT_EQ(removed->rule, "r7");
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(t), nullptr);

  // Removing again (or removing something never stored) yields nothing.
  EXPECT_FALSE(table.Remove(t).has_value());
  EXPECT_FALSE(table.Remove(Tuple("t", {Value::Int(9)})).has_value());
}

TEST(TableTest, RemoveRequiresExactTupleOnKeyedTables) {
  TableOptions opts;
  opts.key_columns = {0};
  Table table("keyed", opts);
  Tuple stored("keyed", {Value::Int(1), Value::Int(10)});
  table.Insert(Entry(stored), 0.0);
  // Same key, different value: Remove must not fire (that is FindGroup's
  // job), so a stale retraction cannot delete a newer replacement.
  EXPECT_FALSE(
      table.Remove(Tuple("keyed", {Value::Int(1), Value::Int(99)})).has_value());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.Remove(stored).has_value());
}

TEST(TableTest, FindGroupMatchesByPrimaryKey) {
  TableOptions opts;
  opts.agg = AggKind::kMin;
  opts.agg_column = 1;
  opts.key_columns = {0};
  Table table("best", opts);
  table.Insert(Entry(Tuple("best", {Value::Int(0), Value::Int(7)})), 0.0);
  table.Insert(Entry(Tuple("best", {Value::Int(0), Value::Int(3)})), 0.0);

  // Any candidate of the group finds the current extremum.
  const StoredTuple* group =
      table.FindGroup(Tuple("best", {Value::Int(0), Value::Int(42)}));
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->tuple.arg(1).AsInt(), 3);
  EXPECT_EQ(table.FindGroup(Tuple("best", {Value::Int(5), Value::Int(1)})),
            nullptr);
}

TEST(TableTest, ProvenanceMergesOnRefresh) {
  Table table("t", TableOptions{});
  Tuple t("t", {Value::Int(1)});
  StoredTuple e1 = Entry(t);
  e1.prov = ProvExpr::Var(0);
  table.Insert(std::move(e1), 0.0);
  StoredTuple e2 = Entry(t);
  e2.prov = ProvExpr::Var(1);
  table.Insert(std::move(e2), 0.0);
  const StoredTuple* merged = table.Find(t);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->prov.Variables(), (std::vector<ProvVar>{0, 1}));
  EXPECT_EQ(merged->prov.kind(), ProvExprKind::kPlus);
}

}  // namespace
}  // namespace provnet
