#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/lexer.h"
#include "datalog/localize.h"
#include "datalog/parser.h"
#include "datalog/tuple.h"
#include "datalog/value.h"

namespace provnet {
namespace {

// --- Value -------------------------------------------------------------------

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_EQ(Value::Address(9).AsAddress(), 9u);
  EXPECT_EQ(Value::List({Value::Int(1)}).AsList().size(), 1u);
}

TEST(ValueTest, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Real(2.5)), 0);
  EXPECT_GT(Value::Real(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, DistinctKindsOrderByTag) {
  EXPECT_LT(Value::Int(100).Compare(Value::Str("a")), 0);
  EXPECT_LT(Value::Str("z").Compare(Value::Address(0)), 0);
}

TEST(ValueTest, ListComparisonIsLexicographic) {
  Value a = Value::List({Value::Int(1), Value::Int(2)});
  Value b = Value::List({Value::Int(1), Value::Int(3)});
  Value c = Value::List({Value::Int(1)});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_LT(c.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  Value a = Value::List({Value::Address(1), Value::Int(5)});
  Value b = Value::List({Value::Address(1), Value::Int(5)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), Value::List({Value::Address(1), Value::Int(6)}).Hash());
}

TEST(ValueTest, SerializationRoundTrip) {
  const Value values[] = {
      Value(),
      Value::Int(INT64_MIN),
      Value::Real(-0.125),
      Value::Str("hello \"world\""),
      Value::Address(4294967295u),
      Value::List({Value::Int(1), Value::List({Value::Str("nested")})}),
  };
  for (const Value& v : values) {
    ByteWriter w;
    v.Serialize(w);
    ByteReader r(w.bytes());
    Result<Value> back = Value::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back.value(), v) << v.ToString();
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(ValueTest, DeserializeRejectsBadTag) {
  Bytes bad = {0x77};
  ByteReader r(bad);
  EXPECT_FALSE(Value::Deserialize(r).ok());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::Address(3).ToString(), "@3");
  EXPECT_EQ(Value::Str("s").ToString(), "\"s\"");
  EXPECT_EQ(Value::List({Value::Int(1), Value::Int(2)}).ToString(), "[1, 2]");
}

// --- Tuple -------------------------------------------------------------------

TEST(TupleTest, EqualityAndOrdering) {
  Tuple a("link", {Value::Address(0), Value::Address(1)});
  Tuple b("link", {Value::Address(0), Value::Address(1)});
  Tuple c("link", {Value::Address(0), Value::Address(2)});
  Tuple d("path", {Value::Address(0), Value::Address(1)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_LT(a, d);  // "link" < "path"
}

TEST(TupleTest, SerializationRoundTrip) {
  Tuple t("bestPath", {Value::Address(1), Value::Address(2),
                       Value::List({Value::Address(1), Value::Address(2)}),
                       Value::Int(7)});
  ByteWriter w;
  t.Serialize(w);
  EXPECT_EQ(w.size(), t.WireSize());
  ByteReader r(w.bytes());
  Result<Tuple> back = Tuple::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), t);
}

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, TokenizesRuleSyntax) {
  auto tokens = Tokenize("r1 reachable(@S,D) :- link(@S,D).").value();
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kIdent,
                       TokenKind::kLParen, TokenKind::kAt,
                       TokenKind::kVariable, TokenKind::kComma,
                       TokenKind::kVariable, TokenKind::kRParen,
                       TokenKind::kImplies, TokenKind::kIdent,
                       TokenKind::kLParen, TokenKind::kAt,
                       TokenKind::kVariable, TokenKind::kComma,
                       TokenKind::kVariable, TokenKind::kRParen,
                       TokenKind::kPeriod, TokenKind::kEnd}));
}

TEST(LexerTest, OperatorsAndNumbers) {
  auto tokens =
      Tokenize("C := C1 + C2, X == 1, Y != 2.5, Z <= 3, W >= 4, V < 5, U > 6")
          .value();
  int assigns = 0, eqs = 0, nes = 0, les = 0, ges = 0, lts = 0, gts = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kAssign) ++assigns;
    if (t.kind == TokenKind::kEq) ++eqs;
    if (t.kind == TokenKind::kNe) ++nes;
    if (t.kind == TokenKind::kLe) ++les;
    if (t.kind == TokenKind::kGe) ++ges;
    if (t.kind == TokenKind::kLt) ++lts;
    if (t.kind == TokenKind::kGt) ++gts;
  }
  EXPECT_EQ(assigns, 1);
  EXPECT_EQ(eqs, 1);
  EXPECT_EQ(nes, 1);
  EXPECT_EQ(les, 1);
  EXPECT_EQ(ges, 1);
  EXPECT_EQ(lts, 1);
  EXPECT_EQ(gts, 1);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("// a comment\n# another\nfoo").value();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "foo");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize(R"("a\"b\n\\")").value();
  ASSERT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "a\"b\n\\");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a = b").ok());   // bare '='
  EXPECT_FALSE(Tokenize("a ! b").ok());   // bare '!'
  EXPECT_FALSE(Tokenize("$").ok());
}

TEST(LexerTest, DoublesAndInts) {
  auto tokens = Tokenize("3 3.5 0.25").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].int_value, 3);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDouble);
}

// --- Parser ------------------------------------------------------------------

TEST(ParserTest, ParsesNdlogRule) {
  Rule r = ParseRule("r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).")
               .value();
  EXPECT_EQ(r.label, "r2");
  EXPECT_EQ(r.head.predicate, "reachable");
  EXPECT_EQ(r.head.loc_index, 0);
  ASSERT_EQ(r.body.size(), 2u);
  EXPECT_EQ(r.body[0].atom.predicate, "link");
  EXPECT_EQ(r.body[1].atom.predicate, "reachable");
  EXPECT_EQ(r.body[1].atom.loc_index, 0);
}

TEST(ParserTest, ParsesSaysAndDestination) {
  Program p = ParseProgram(R"(
    At S:
    s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
  )").value();
  ASSERT_EQ(p.rules.size(), 1u);
  const Rule& r = p.rules[0];
  EXPECT_TRUE(p.sendlog);
  EXPECT_EQ(r.context.value(), "S");
  ASSERT_TRUE(r.head_dest.has_value());
  EXPECT_EQ(r.head_dest->name, "Z");
  ASSERT_TRUE(r.body[0].atom.says.has_value());
  EXPECT_EQ(r.body[0].atom.says->name, "Z");
  EXPECT_EQ(r.body[1].atom.says->name, "W");
}

TEST(ParserTest, ParsesAggregatesAndFunctions) {
  Program p = ParseProgram(R"(
    sp2 path(@S,D,P,C) :- link(@S,Z,C1), bestPath(@Z,D,P2,C2),
                          f_member(P2,S) == 0, C := C1 + C2,
                          P := f_concatPath(S,P2).
    sp3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
  )").value();
  ASSERT_EQ(p.rules.size(), 2u);
  const Rule& sp2 = p.rules[0];
  EXPECT_EQ(sp2.body.size(), 5u);
  EXPECT_EQ(sp2.body[2].kind, LiteralKind::kCondition);
  EXPECT_EQ(sp2.body[3].kind, LiteralKind::kAssign);
  EXPECT_EQ(sp2.body[3].assign_var, "C");
  const Rule& sp3 = p.rules[1];
  EXPECT_EQ(sp3.head.args[2].kind, TermKind::kAggregate);
  EXPECT_EQ(sp3.head.args[2].agg, AggKind::kMin);
  EXPECT_EQ(sp3.head.args[2].name, "C");
}

TEST(ParserTest, ParsesMaterialize) {
  Program p = ParseProgram(
      "materialize(link, 120, 1000, keys(1,2)).\n"
      "materialize(path, infinity, infinity, keys(1)).\n")
      .value();
  ASSERT_EQ(p.materialize.size(), 2u);
  EXPECT_EQ(p.materialize[0].predicate, "link");
  EXPECT_DOUBLE_EQ(p.materialize[0].ttl_seconds, 120.0);
  EXPECT_EQ(p.materialize[0].max_size, 1000);
  EXPECT_EQ(p.materialize[0].key_positions, (std::vector<int>{1, 2}));
  EXPECT_LT(p.materialize[1].ttl_seconds, 0);
  EXPECT_LT(p.materialize[1].max_size, 0);
}

TEST(ParserTest, ParsesGroundFacts) {
  Program p = ParseProgram("link(@0, @1, 5).\nlink(@1, @2, 3).").value();
  EXPECT_TRUE(p.rules.empty());
  ASSERT_EQ(p.facts.size(), 2u);
  EXPECT_EQ(p.facts[0].predicate, "link");
  EXPECT_EQ(p.facts[0].args[0].constant.AsAddress(), 0u);
  EXPECT_EQ(p.facts[0].args[2].constant.AsInt(), 5);
}

TEST(ParserTest, BareIdentIsStringConstant) {
  Rule r = ParseRule("trusted(@S, alice) :- node(@S).").value();
  EXPECT_EQ(r.head.args[1].constant.AsString(), "alice");
}

TEST(ParserTest, NegativeNumbers) {
  Rule r = ParseRule("p(@S, -5, -2.5) :- q(@S).").value();
  EXPECT_EQ(r.head.args[1].constant.AsInt(), -5);
  EXPECT_DOUBLE_EQ(r.head.args[2].constant.AsDouble(), -2.5);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseRule("p(@S :- q(@S).").ok());        // missing paren
  EXPECT_FALSE(ParseRule("p(@S) :- q(@S)").ok());        // missing period
  EXPECT_FALSE(ParseProgram("materialize(x, 1, 2).").ok());  // keys missing
  EXPECT_FALSE(ParseRule("p(min<3>) :- q(@S).").ok());   // agg needs var
}

TEST(ParserTest, MultipleLocationSpecifiersRejected) {
  EXPECT_FALSE(ParseRule("p(@S,@T) :- q(@S,@T).").ok());
}

// Helper: small program with every feature used by ToString.
std::string ReachableIsh() {
  return R"(
    materialize(link, infinity, infinity, keys(1,2)).
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
  )";
}

TEST(ParserTest, ProgramToStringRoundTrips) {
  Program p = ParseProgram(ReachableIsh()).value();
  Program p2 = ParseProgram(p.ToString()).value();
  EXPECT_EQ(p.rules.size(), p2.rules.size());
  EXPECT_EQ(p.ToString(), p2.ToString());
}

// --- Analysis ----------------------------------------------------------------

TEST(AnalysisTest, AcceptsWellFormedNdlog) {
  Program p = ParseProgram(ReachableIsh()).value();
  EXPECT_TRUE(AnalyzeProgram(p).ok());
}

TEST(AnalysisTest, RejectsUnboundHeadVariable) {
  Program p = ParseProgram("r bad(@S,D,X) :- link(@S,D).").value();
  Status s = AnalyzeProgram(p);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("X"), std::string::npos);
}

TEST(AnalysisTest, RejectsMissingLocationSpecifier) {
  Program p = ParseProgram("r bad(@S,D) :- link(S,D).").value();
  EXPECT_FALSE(AnalyzeProgram(p).ok());
}

TEST(AnalysisTest, RejectsSaysOutsideSendlog) {
  Program p =
      ParseProgram("r bad(@S,D) :- W says link(@S,D).").value();
  EXPECT_FALSE(AnalyzeProgram(p).ok());
}

TEST(AnalysisTest, RejectsUnorderableBody) {
  // X is never bound by any atom.
  Program p = ParseProgram("r bad(@S,D) :- link(@S,D), X < 3.").value();
  Status s = AnalyzeProgram(p);
  EXPECT_FALSE(s.ok());
}

TEST(AnalysisTest, ReordersConditionsAfterBindingAtoms) {
  // The condition is written first but must run after the atom binds C.
  Program p =
      ParseProgram("r pay(@S,C) :- C < 10, link(@S,D,C).").value();
  ASSERT_TRUE(AnalyzeProgram(p).ok());
  EXPECT_EQ(p.rules[0].body[0].kind, LiteralKind::kAtom);
  EXPECT_EQ(p.rules[0].body[1].kind, LiteralKind::kCondition);
}

TEST(AnalysisTest, RejectsAggregateInBody) {
  // Aggregates are head-only; in body position the parser already refuses
  // the syntax.
  EXPECT_FALSE(ParseProgram("r bad(@S,D) :- cost(@S,D,min<C>).").ok());
}

TEST(AnalysisTest, SendlogContextBindsImplicitly) {
  Program p = ParseProgram(R"(
    At S:
    z ping(S)@D :- peer(D).
  )").value();
  EXPECT_TRUE(AnalyzeProgram(p).ok());
}

TEST(AnalysisTest, RejectsNdlogFactWithoutAddress) {
  Program p = ParseProgram("weight(7, 9).").value();
  EXPECT_FALSE(AnalyzeProgram(p).ok());
}

// --- Localization ------------------------------------------------------------

TEST(LocalizeTest, LocalRulePassesThrough) {
  Program p = ParseProgram("r1 reachable(@S,D) :- link(@S,D).").value();
  ASSERT_TRUE(AnalyzeProgram(p).ok());
  LocalizedProgram lp = LocalizeProgram(p).value();
  ASSERT_EQ(lp.rules.size(), 1u);
  EXPECT_EQ(lp.rules[0].local_var, "S");
  EXPECT_FALSE(lp.rules[0].send_to.has_value());
  EXPECT_TRUE(lp.aux_predicates.empty());
}

TEST(LocalizeTest, ClassicReachableRewrite) {
  Program p = ParseProgram(
      "r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).").value();
  ASSERT_TRUE(AnalyzeProgram(p).ok());
  LocalizedProgram lp = LocalizeProgram(p).value();
  ASSERT_EQ(lp.rules.size(), 2u);
  ASSERT_EQ(lp.aux_predicates.size(), 1u);

  const LocalizedRule& ship = lp.rules[0];
  EXPECT_TRUE(ship.synthesized);
  EXPECT_EQ(ship.local_var, "S");
  ASSERT_TRUE(ship.send_to.has_value());
  EXPECT_EQ(ship.send_to->name, "Z");
  EXPECT_EQ(ship.rule.head.predicate, lp.aux_predicates[0]);

  const LocalizedRule& main = lp.rules[1];
  EXPECT_EQ(main.local_var, "Z");
  ASSERT_TRUE(main.send_to.has_value());
  EXPECT_EQ(main.send_to->name, "S");
  EXPECT_EQ(main.rule.body[0].atom.predicate, lp.aux_predicates[0]);
}

TEST(LocalizeTest, HeadShipOnlyRule) {
  // Body local at S, head stored at D: no aux predicate, just a send.
  Program p = ParseProgram("r linkD(@D,S) :- link(@S,D).").value();
  ASSERT_TRUE(AnalyzeProgram(p).ok());
  LocalizedProgram lp = LocalizeProgram(p).value();
  ASSERT_EQ(lp.rules.size(), 1u);
  EXPECT_TRUE(lp.aux_predicates.empty());
  EXPECT_EQ(lp.rules[0].local_var, "S");
  ASSERT_TRUE(lp.rules[0].send_to.has_value());
  EXPECT_EQ(lp.rules[0].send_to->name, "D");
}

TEST(LocalizeTest, SendlogIsAlreadyLocal) {
  Program p = ParseProgram(R"(
    At S:
    s2 linkD(D,S)@D :- link(S,D).
  )").value();
  ASSERT_TRUE(AnalyzeProgram(p).ok());
  LocalizedProgram lp = LocalizeProgram(p).value();
  ASSERT_EQ(lp.rules.size(), 1u);
  EXPECT_EQ(lp.rules[0].local_var, "S");
  EXPECT_TRUE(lp.rules[0].send_to.has_value());
  EXPECT_TRUE(lp.aux_predicates.empty());
}

TEST(LocalizeTest, ThreeLocationChain) {
  Program p = ParseProgram(
      "r3 triple(@S,W) :- link(@S,Z), hop(@Z,W), tag(@W).").value();
  ASSERT_TRUE(AnalyzeProgram(p).ok());
  LocalizedProgram lp = LocalizeProgram(p).value();
  // Two ship rules plus the final rule.
  EXPECT_EQ(lp.rules.size(), 3u);
  EXPECT_EQ(lp.aux_predicates.size(), 2u);
  const LocalizedRule& last = lp.rules.back();
  EXPECT_EQ(last.local_var, "W");
  ASSERT_TRUE(last.send_to.has_value());
  EXPECT_EQ(last.send_to->name, "S");
}

TEST(LocalizeTest, UnshippableDestinationFails) {
  // Z is not bound by the atoms at S, so the rewrite cannot route.
  Program p = ParseProgram(
      "r bad(@S,D) :- local(@S), remote(@Z,D).").value();
  ASSERT_TRUE(AnalyzeProgram(p).ok());
  EXPECT_FALSE(LocalizeProgram(p).ok());
}

}  // namespace
}  // namespace provnet
