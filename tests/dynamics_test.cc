// Incremental update & churn subsystem (src/dynamics/): provenance-aware
// deletion, DRed over-delete/re-derive, principal revocation, expiry
// deltas, and the dynamic-network scenario driver.
//
// The load-bearing oracle: after churn, an incrementally-maintained engine
// must store exactly what a fresh engine computes from the final base
// facts. Every hard case (cycles, alternate paths, aggregates, revocation)
// is checked against that golden fixpoint.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/bestpath.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "dynamics/churn.h"
#include "net/topology.h"
#include "provenance/prov_expr.h"

namespace provnet {
namespace {

Tuple Link2(NodeId a, NodeId b) {
  return Tuple("link", {Value::Address(a), Value::Address(b)});
}

Tuple Link3(NodeId a, NodeId b, int64_t c) {
  return Tuple("link", {Value::Address(a), Value::Address(b), Value::Int(c)});
}

Tuple Reach(NodeId a, NodeId b) {
  return Tuple("reachable", {Value::Address(a), Value::Address(b)});
}

EngineOptions TupleGrainProv() {
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kTuple;
  return opts;
}

// Builds an engine over arity-2 link facts (the reachable programs) and
// runs it to fixpoint.
std::unique_ptr<Engine> ReachEngine(const std::string& source,
                                    const Topology& topo,
                                    EngineOptions opts) {
  Result<std::unique_ptr<Engine>> engine = Engine::Create(topo, source, opts);
  EXPECT_TRUE(engine.ok()) << engine.status();
  std::unique_ptr<Engine> e = std::move(engine).value();
  for (const TopoEdge& edge : topo.edges) {
    EXPECT_TRUE(e->InsertFact(edge.from, Link2(edge.from, edge.to)).ok());
  }
  EXPECT_TRUE(e->Run().ok());
  return e;
}

// Builds a Best-Path engine over arity-3 link facts and runs to fixpoint.
std::unique_ptr<Engine> BestPathEngine(const Topology& topo,
                                       EngineOptions opts) {
  Result<std::unique_ptr<Engine>> engine =
      Engine::Create(topo, BestPathNdlogProgram(), opts);
  EXPECT_TRUE(engine.ok()) << engine.status();
  std::unique_ptr<Engine> e = std::move(engine).value();
  EXPECT_TRUE(e->InsertLinkFacts().ok());
  EXPECT_TRUE(e->Run().ok());
  return e;
}

// The incremental engine must match the golden fixpoint tuple-for-tuple.
void ExpectSamePred(Engine& incremental, Engine& golden,
                    const std::string& pred) {
  ASSERT_EQ(incremental.num_nodes(), golden.num_nodes());
  for (NodeId n = 0; n < incremental.num_nodes(); ++n) {
    std::vector<Tuple> got = incremental.TuplesAt(n, pred);
    std::vector<Tuple> want = golden.TuplesAt(n, pred);
    EXPECT_EQ(got.size(), want.size())
        << pred << " mismatch at node " << n;
    for (size_t i = 0; i < std::min(got.size(), want.size()); ++i) {
      EXPECT_EQ(got[i], want[i])
          << pred << " at node " << n << ": got " << got[i].ToString()
          << " want " << want[i].ToString();
    }
  }
}

Topology Diamond() {
  // Two disjoint routes 0 -> 3 (via 1 and via 2).
  Topology topo;
  topo.num_nodes = 4;
  topo.edges = {{0, 1, 1}, {1, 3, 1}, {0, 2, 1}, {2, 3, 1}};
  return topo;
}

Topology RingWithChord() {
  // Directed ring plus chord 0 -> 2: cyclic derivations, and alternate
  // support for part of the closure when 1 -> 2 disappears.
  Topology topo;
  topo.num_nodes = 4;
  topo.edges = {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}, {0, 2, 1}};
  return topo;
}

Topology Without(const Topology& topo, NodeId from, NodeId to) {
  Topology out;
  out.num_nodes = topo.num_nodes;
  for (const TopoEdge& e : topo.edges) {
    if (e.from == from && e.to == to) continue;
    out.edges.push_back(e);
  }
  return out;
}

// --- ProvExpr restriction (the pruning primitive) ---------------------------

TEST(ProvRestrictTest, SubstitutesZeroAndSimplifies) {
  ProvExpr ab = ProvExpr::Times(ProvExpr::Var(1), ProvExpr::Var(2));
  ProvExpr expr = ProvExpr::Plus(ab, ProvExpr::Var(3));

  EXPECT_TRUE(expr.DependsOnAny({2}));
  EXPECT_FALSE(expr.DependsOnAny({7}));

  // Killing b leaves the alternative c.
  ProvExpr no_b = expr.Restrict({2});
  EXPECT_FALSE(no_b.IsZero());
  EXPECT_EQ(no_b.Variables(), (std::vector<ProvVar>{3}));

  // Killing b and c leaves no derivation.
  EXPECT_TRUE(expr.Restrict({2, 3}).IsZero());

  // Killing an unrelated variable is the identity.
  EXPECT_TRUE(expr.Restrict({9}).Equals(expr));
}

// --- DeleteFact: alternate-path survival (acceptance criterion) -------------

void DeleteLinkOnDiamond(EngineOptions opts) {
  Topology topo = Diamond();
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableNdlogProgram(), topo, opts);
  ASSERT_NE(e, nullptr);

  // Both routes to 3 exist.
  ASSERT_TRUE(e->AnnotationOf(0, Reach(0, 3)).ok());

  ASSERT_TRUE(e->DeleteFact(1, Link2(1, 3)).ok());
  Result<RunStats> stats = e->Run();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats.value().retractions, 0u);

  // Routes solely derived from the deleted link are gone...
  EXPECT_TRUE(e->TuplesAt(1, "reachable").empty());
  // ...while the independently-derived route survives.
  std::vector<Tuple> at0 = e->TuplesAt(0, "reachable");
  EXPECT_NE(std::find(at0.begin(), at0.end(), Reach(0, 3)), at0.end());

  // Golden: a fresh fixpoint over the post-deletion facts.
  std::unique_ptr<Engine> golden =
      ReachEngine(ReachableNdlogProgram(), Without(topo, 1, 3), opts);
  ASSERT_NE(golden, nullptr);
  ExpectSamePred(*e, *golden, "reachable");
}

TEST(DeleteFactTest, AlternatePathSurvivesWithAnnotationPruning) {
  DeleteLinkOnDiamond(TupleGrainProv());
}

TEST(DeleteFactTest, AlternatePathSurvivesWithPureDRed) {
  DeleteLinkOnDiamond(EngineOptions{});  // no provenance: re-derivation path
}

TEST(DeleteFactTest, SurvivorKeepsRestrictedAnnotation) {
  Topology topo = Diamond();
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableNdlogProgram(), topo, TupleGrainProv());
  ASSERT_NE(e, nullptr);

  ASSERT_TRUE(e->DeleteFact(1, Link2(1, 3)).ok());
  ASSERT_TRUE(e->Run().ok());

  // The surviving route's annotation no longer mentions the dead link.
  Result<ProvExpr> prov = e->AnnotationOf(0, Reach(0, 3));
  ASSERT_TRUE(prov.ok()) << prov.status();
  ProvVar dead = e->registry().Find(Link2(1, 3).ToString()).value();
  EXPECT_FALSE(prov.value().DependsOnAny({dead}));
  EXPECT_FALSE(prov.value().IsZero());
}

TEST(DeleteFactTest, MissingTupleIsNotFound) {
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableNdlogProgram(), Diamond(), EngineOptions{});
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->DeleteFact(0, Link2(0, 3)).ok());
}

// --- Cyclic programs: deletion over a ring ----------------------------------

void DeleteLinkOnRing(EngineOptions opts) {
  Topology topo = RingWithChord();
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableNdlogProgram(), topo, opts);
  ASSERT_NE(e, nullptr);
  // The full ring closure: everyone reaches everyone.
  EXPECT_EQ(e->TuplesAt(1, "reachable").size(), 4u);

  ASSERT_TRUE(e->DeleteFact(1, Link2(1, 2)).ok());
  ASSERT_TRUE(e->Run().ok());

  // Tuples re-derivable via the chord survive; the cycle must not keep
  // dead tuples alive through mutual support (reachable(1,*) relied on
  // 1->2 alone and has to go).
  std::unique_ptr<Engine> golden =
      ReachEngine(ReachableNdlogProgram(), Without(topo, 1, 2), opts);
  ASSERT_NE(golden, nullptr);
  ExpectSamePred(*e, *golden, "reachable");

  std::vector<Tuple> at3 = e->TuplesAt(3, "reachable");
  EXPECT_NE(std::find(at3.begin(), at3.end(), Reach(3, 2)), at3.end())
      << "3 -> 0 -> 2 via the chord must survive";
  EXPECT_TRUE(e->TuplesAt(1, "reachable").empty())
      << "node 1 lost its only outgoing link";
}

TEST(CyclicDeleteTest, RingWithChordAnnotationPruning) {
  DeleteLinkOnRing(TupleGrainProv());
}

TEST(CyclicDeleteTest, RingWithChordPureDRed) {
  DeleteLinkOnRing(EngineOptions{});
}

// --- Aggregates: Best-Path reroutes after a deletion ------------------------

void BestPathReroutes(EngineOptions opts) {
  // Cheap two-hop route 0->1->2 (cost 2) vs direct fallback 0->2 (cost 5).
  Topology topo;
  topo.num_nodes = 3;
  topo.edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 5}};
  std::unique_ptr<Engine> e = BestPathEngine(topo, opts);
  ASSERT_NE(e, nullptr);

  std::vector<Tuple> best = e->TuplesAt(0, "bestPath");
  auto cost_to_2 = [](const std::vector<Tuple>& tuples) -> int64_t {
    for (const Tuple& t : tuples) {
      if (t.arg(1).AsAddress() == 2) return t.arg(3).AsInt();
    }
    return -1;
  };
  ASSERT_EQ(cost_to_2(best), 2);

  ASSERT_TRUE(e->DeleteFact(1, Link3(1, 2, 1)).ok());
  Result<RunStats> stats = e->Run();
  ASSERT_TRUE(stats.ok()) << stats.status();

  // The MIN aggregate re-derives from surviving paths: the route falls
  // back to the direct (more expensive) link.
  EXPECT_EQ(cost_to_2(e->TuplesAt(0, "bestPath")), 5);

  std::unique_ptr<Engine> golden =
      BestPathEngine(Without(topo, 1, 2), opts);
  ASSERT_NE(golden, nullptr);
  ExpectSamePred(*e, *golden, "bestPath");
  ExpectSamePred(*e, *golden, "bestPathCost");
  ExpectSamePred(*e, *golden, "path");
}

TEST(AggregateDeleteTest, BestPathReroutesAnnotationPruning) {
  BestPathReroutes(TupleGrainProv());
}

TEST(AggregateDeleteTest, BestPathReroutesPureDRed) {
  BestPathReroutes(EngineOptions{});
}

// --- Principal revocation: cascade across nodes -----------------------------

TEST(RetractPrincipalTest, RevocationCascadesAcrossNodes) {
  Topology topo = RingWithChord();
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kPrincipal;
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableSendlogProgram(), topo, opts);
  ASSERT_NE(e, nullptr);

  ASSERT_TRUE(e->RetractPrincipal("n1").ok());
  ASSERT_TRUE(e->Run().ok());

  // Golden: node 1 never asserted its links. Reachability *through* node 1
  // dies on every node; routes into 1 asserted by others survive.
  Topology reduced;
  reduced.num_nodes = topo.num_nodes;
  for (const TopoEdge& edge : topo.edges) {
    if (edge.from != 1) reduced.edges.push_back(edge);
  }
  std::unique_ptr<Engine> golden =
      ReachEngine(ReachableSendlogProgram(), reduced, opts);
  ASSERT_NE(golden, nullptr);
  ExpectSamePred(*e, *golden, "reachable");

  // Concretely: 0 reached 3 only through 1's exports... unless the chord
  // 0->2 keeps it alive. 1's own forwarding is gone everywhere.
  std::vector<Tuple> at2 = e->TuplesAt(2, "reachable");
  EXPECT_NE(std::find(at2.begin(), at2.end(), Reach(2, 1)), at2.end())
      << "2 -> 3 -> 0 -> 1 avoids n1's assertions and must survive";
}

TEST(RetractPrincipalTest, BestPathHealsAroundRevokedPrincipal) {
  // The compromise_response example's configuration: NDlog Best-Path with
  // principal-grained condensed provenance. Revoking a transit node must
  // leave exactly the fixpoint of a network where that node asserts no
  // links.
  Rng rng(5);
  Topology topo = Topology::RingPlusRandom(8, 3, rng);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kPrincipal;
  std::unique_ptr<Engine> e = BestPathEngine(topo, opts);
  ASSERT_NE(e, nullptr);

  const NodeId suspect = 3;
  ASSERT_TRUE(e->RetractPrincipal(e->PrincipalOf(suspect)).ok());
  ASSERT_TRUE(e->Run().ok());

  Topology reduced;
  reduced.num_nodes = topo.num_nodes;
  for (const TopoEdge& edge : topo.edges) {
    if (edge.from != suspect) reduced.edges.push_back(edge);
  }
  std::unique_ptr<Engine> golden = BestPathEngine(reduced, opts);
  ASSERT_NE(golden, nullptr);
  ExpectSamePred(*e, *golden, "bestPathCost");
  // No surviving route transits the revoked node.
  for (NodeId n = 0; n < e->num_nodes(); ++n) {
    for (const Tuple& t : e->TuplesAt(n, "bestPath")) {
      for (const Value& hop : t.arg(2).AsList()) {
        EXPECT_TRUE(hop.AsAddress() != suspect ||
                    t.arg(1).AsAddress() == suspect)
            << "route still transits the revoked node: " << t.ToString();
      }
    }
  }
}

TEST(RetractPrincipalTest, RevocationWithRsaSaysTags) {
  // Authenticated variant: retraction messages carry verified says tags.
  Topology topo = Diamond();
  EngineOptions opts;
  opts.authenticate = true;
  opts.rsa_bits = 256;  // smallest modulus the signer accepts
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kPrincipal;
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableSendlogProgram(), topo, opts);
  ASSERT_NE(e, nullptr);

  ASSERT_TRUE(e->RetractPrincipal("n1").ok());
  Result<RunStats> stats = e->Run();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.value().auth_failures, 0u);

  Topology reduced;
  reduced.num_nodes = topo.num_nodes;
  for (const TopoEdge& edge : topo.edges) {
    if (edge.from != 1) reduced.edges.push_back(edge);
  }
  std::unique_ptr<Engine> golden =
      ReachEngine(ReachableSendlogProgram(), reduced, opts);
  ASSERT_NE(golden, nullptr);
  ExpectSamePred(*e, *golden, "reachable");
}

// --- Soft-state expiry fires deletion deltas --------------------------------

TEST(ExpiryDeltaTest, ExpiredLinkTearsDownDerivedRoutes) {
  Topology topo;
  topo.num_nodes = 3;
  topo.edges = {{0, 1, 1}, {1, 2, 1}};
  EngineOptions opts = TupleGrainProv();
  Result<std::unique_ptr<Engine>> engine =
      Engine::Create(topo, ReachableNdlogProgram(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status();
  std::unique_ptr<Engine> e = std::move(engine).value();
  ASSERT_TRUE(e->InsertFact(0, Link2(0, 1), /*ttl=*/5.0).ok());
  ASSERT_TRUE(e->InsertFact(1, Link2(1, 2)).ok());
  ASSERT_TRUE(e->Run().ok());
  EXPECT_EQ(e->TuplesAt(0, "reachable").size(), 2u);

  e->network().AdvanceTime(10.0);
  e->ExpireNow();
  ASSERT_TRUE(e->Run().ok());

  // The expired link's derived routes are gone; the unexpired remainder
  // of the closure survives.
  EXPECT_TRUE(e->TuplesAt(0, "reachable").empty());
  std::vector<Tuple> at1 = e->TuplesAt(1, "reachable");
  EXPECT_NE(std::find(at1.begin(), at1.end(), Reach(1, 2)), at1.end());
}

// --- Incremental insertion after the fixpoint -------------------------------

TEST(IncrementalInsertTest, LateLinkMatchesFreshFixpoint) {
  Topology partial;
  partial.num_nodes = 3;
  partial.edges = {{0, 1, 1}, {1, 2, 1}};
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableNdlogProgram(), partial, TupleGrainProv());
  ASSERT_NE(e, nullptr);

  // Close the ring after the fixpoint: only the new strands re-fire.
  ASSERT_TRUE(e->InsertFact(2, Link2(2, 0)).ok());
  ASSERT_TRUE(e->Run().ok());

  Topology full = partial;
  full.edges.push_back({2, 0, 1});
  std::unique_ptr<Engine> golden =
      ReachEngine(ReachableNdlogProgram(), full, TupleGrainProv());
  ASSERT_NE(golden, nullptr);
  ExpectSamePred(*e, *golden, "reachable");
}

// --- Churn driver: flap sequences return to steady state --------------------

void FlapsReturnToSteadyState(EngineOptions opts) {
  Rng rng(42);
  Topology topo = Topology::RingPlusRandom(12, 3, rng);
  std::unique_ptr<Engine> e = BestPathEngine(topo, opts);
  ASSERT_NE(e, nullptr);

  // Snapshot the steady state before churn. bestPathCost is the
  // deterministic part of the fixpoint; bestPath may legitimately hold a
  // different representative among equal-cost routes depending on
  // derivation order, so it is checked against the shortest-path oracle
  // instead of tuple-for-tuple.
  std::vector<std::vector<Tuple>> before;
  for (NodeId n = 0; n < e->num_nodes(); ++n) {
    before.push_back(e->TuplesAt(n, "bestPathCost"));
  }

  Rng flap_rng(7);
  ChurnScript script =
      ChurnScript::RandomLinkFlaps(topo, /*flaps=*/4, /*start=*/1.0,
                                   /*spacing=*/1.0, flap_rng);
  ASSERT_EQ(script.events.size(), 8u);
  ChurnDriver driver(*e, /*link_arity=*/3);
  Result<ChurnReport> report = driver.Replay(script);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report.value().total_retractions, 0u);

  // Every link came back up: the maintained state must equal the original
  // steady-state fixpoint.
  for (NodeId n = 0; n < e->num_nodes(); ++n) {
    std::vector<Tuple> after = e->TuplesAt(n, "bestPathCost");
    ASSERT_EQ(after.size(), before[n].size())
        << "bestPathCost diverged at node " << n;
    for (size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(after[i], before[n][i])
          << "bestPathCost at node " << n << ": got " << after[i].ToString()
          << " want " << before[n][i].ToString();
    }
  }
  Status oracle = VerifyBestPaths(*e, topo);
  EXPECT_TRUE(oracle.ok()) << oracle;
}

TEST(ChurnDriverTest, FlapsReturnToSteadyStateAnnotationPruning) {
  FlapsReturnToSteadyState(TupleGrainProv());
}

TEST(ChurnDriverTest, FlapsReturnToSteadyStatePureDRed) {
  FlapsReturnToSteadyState(EngineOptions{});
}

// --- COUNT witness multiset: O(delta) deletion ------------------------------

const char* kDegreeProgram = R"(
  materialize(link, infinity, infinity, keys(1,2)).
  materialize(deg, infinity, infinity, keys(1)).
  d1 deg(@S, count<D>) :- link(@S, D, C).
)";

Tuple Deg(NodeId s, int64_t count) {
  return Tuple("deg", {Value::Address(s), Value::Int(count)});
}

TEST(CountDeltaTest, DeletionDecrementsCountWithoutRederivation) {
  // Star: node 0 links to 1, 2, 3.
  Topology topo;
  topo.num_nodes = 4;
  topo.edges = {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}};
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, kDegreeProgram, EngineOptions{});
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<Engine> e = std::move(created).value();
  ASSERT_TRUE(e->InsertLinkFacts().ok());
  ASSERT_TRUE(e->Run().ok());
  ASSERT_EQ(e->TuplesAt(0, "deg"), std::vector<Tuple>{Deg(0, 3)});

  // One dead witness: the count drops by exactly one, maintained through
  // the witness multiset — no group re-derivation.
  ASSERT_TRUE(e->DeleteFact(0, Link3(0, 2, 1)).ok());
  Result<RunStats> stats = e->Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rederivations, 0u)
      << "COUNT deletion must not fall back to group re-derivation";
  EXPECT_EQ(e->TuplesAt(0, "deg"), std::vector<Tuple>{Deg(0, 2)});

  // Down to one, then to an empty group: the deg row itself disappears.
  ASSERT_TRUE(e->DeleteFact(0, Link3(0, 1, 1)).ok());
  ASSERT_TRUE(e->Run().ok());
  EXPECT_EQ(e->TuplesAt(0, "deg"), std::vector<Tuple>{Deg(0, 1)});
  ASSERT_TRUE(e->DeleteFact(0, Link3(0, 3, 1)).ok());
  ASSERT_TRUE(e->Run().ok());
  EXPECT_TRUE(e->TuplesAt(0, "deg").empty());

  // Golden: a fresh engine over the final base facts agrees.
  Topology empty;
  empty.num_nodes = 4;
  Result<std::unique_ptr<Engine>> golden =
      Engine::Create(empty, kDegreeProgram, EngineOptions{});
  ASSERT_TRUE(golden.ok());
  ASSERT_TRUE(golden.value()->Run().ok());
  EXPECT_EQ(e->TuplesAt(0, "deg"), golden.value()->TuplesAt(0, "deg"));
}

TEST(CountDeltaTest, WitnessWithTwoDerivationsSurvivesOne) {
  // The same witness value (S, D) derived through two distinct rules: the
  // multiset holds refcount 2, so retiring one derivation must not change
  // the count.
  const char* program = R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(backlink, infinity, infinity, keys(1,2)).
    materialize(deg, infinity, infinity, keys(1)).
    d1 deg(@S, count<D>) :- link(@S, D, C).
    d2 deg(@S, count<D>) :- backlink(@S, D, C).
  )";
  Topology topo;
  topo.num_nodes = 3;
  topo.edges = {{0, 1, 1}, {0, 2, 1}};
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, program, EngineOptions{});
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<Engine> e = std::move(created).value();
  ASSERT_TRUE(e->InsertLinkFacts().ok());
  Tuple backlink("backlink",
                 {Value::Address(0), Value::Address(1), Value::Int(5)});
  ASSERT_TRUE(e->InsertFact(0, backlink).ok());
  ASSERT_TRUE(e->Run().ok());
  ASSERT_EQ(e->TuplesAt(0, "deg"), std::vector<Tuple>{Deg(0, 2)});

  // Witness (0,1) loses its link derivation but keeps the backlink one.
  ASSERT_TRUE(e->DeleteFact(0, Link3(0, 1, 1)).ok());
  ASSERT_TRUE(e->Run().ok());
  EXPECT_EQ(e->TuplesAt(0, "deg"), std::vector<Tuple>{Deg(0, 2)});

  // Now the backlink too: the witness dies, the count drops.
  ASSERT_TRUE(e->DeleteFact(0, backlink).ok());
  ASSERT_TRUE(e->Run().ok());
  EXPECT_EQ(e->TuplesAt(0, "deg"), std::vector<Tuple>{Deg(0, 1)});
}

TEST(CountDeltaTest, JointDerivationDeletedTwiceInOneEpochDecrementsOnce) {
  // One derivation joins two body tuples; deleting both in the same epoch
  // enumerates the dead derivation from each delta's delete strand. The
  // per-epoch dedup must decrement the witness exactly once.
  const char* program = R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(mark, infinity, infinity, keys(1,2)).
    materialize(deg, infinity, infinity, keys(1)).
    j1 deg(@S, count<D>) :- link(@S, D, C), mark(@S, D).
  )";
  Topology topo;
  topo.num_nodes = 3;
  topo.edges = {{0, 1, 1}, {0, 2, 1}};
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, program, EngineOptions{});
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<Engine> e = std::move(created).value();
  ASSERT_TRUE(e->InsertLinkFacts().ok());
  Tuple mark1("mark", {Value::Address(0), Value::Address(1)});
  Tuple mark2("mark", {Value::Address(0), Value::Address(2)});
  ASSERT_TRUE(e->InsertFact(0, mark1).ok());
  ASSERT_TRUE(e->InsertFact(0, mark2).ok());
  ASSERT_TRUE(e->Run().ok());
  ASSERT_EQ(e->TuplesAt(0, "deg"), std::vector<Tuple>{Deg(0, 2)});

  // Both body tuples of witness (0,1)'s only derivation die together.
  ASSERT_TRUE(e->DeleteFact(0, Link3(0, 1, 1)).ok());
  ASSERT_TRUE(e->DeleteFact(0, mark1).ok());
  ASSERT_TRUE(e->Run().ok());
  EXPECT_EQ(e->TuplesAt(0, "deg"), std::vector<Tuple>{Deg(0, 1)});
}

// --- Annotation aging (ROADMAP follow-up from PR 1) -------------------------

TEST(AgingTest, DropsExpiredSupportAlternativesSoPruningAgreesWithDRed) {
  // Diamond reachability at tuple grain: reachable(0,3)'s annotation holds
  // two alternatives (via 1 and via 2). Remove link(0,1) *behind the delta
  // machinery's back* — the un-refreshed-expiry shape — so annotations
  // still credit the dead alternative. The aging pass must restrict them
  // (and retire tuples left without live support) so the fixpoint matches
  // what DRed computes from the live base facts.
  Topology topo = Diamond();
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableNdlogProgram(), topo, TupleGrainProv());
  ASSERT_NE(e, nullptr);

  Result<ProvExpr> before = e->AnnotationOf(0, Reach(0, 3));
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().Variables().size(), 4u)  // l01,l13,l02,l23
      << before.value().ToString();

  // The silent removal: no deletion delta, no killed variable.
  Table* links = e->node(0).FindTableMutable("link");
  ASSERT_NE(links, nullptr);
  ASSERT_TRUE(links->Remove(Link2(0, 1)).has_value());

  // Aging finds the dead base variable, restricts survivors, retires
  // reachable(0,1) (no live support), and cascades.
  EXPECT_GT(e->AgeAnnotations(), 0u);
  ASSERT_TRUE(e->Run().ok());

  std::unique_ptr<Engine> golden = ReachEngine(
      ReachableNdlogProgram(), Without(topo, 0, 1), TupleGrainProv());
  ASSERT_NE(golden, nullptr);
  ExpectSamePred(*e, *golden, "reachable");

  Result<ProvExpr> after = e->AnnotationOf(0, Reach(0, 3));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().Variables().size(), 2u)  // only the 0->2->3 route
      << "aged annotation must drop the dead alternative: "
      << after.value().ToString();

  // Idempotent once consistent.
  EXPECT_EQ(e->AgeAnnotations(), 0u);
}

TEST(ChurnDriverTest, CompromiseScriptRevokesPrincipal) {
  Topology topo = Diamond();
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kPrincipal;
  std::unique_ptr<Engine> e =
      ReachEngine(ReachableSendlogProgram(), topo, opts);
  ASSERT_NE(e, nullptr);

  ChurnDriver driver(*e, /*link_arity=*/2);
  Result<ChurnReport> report =
      driver.Replay(ChurnScript::CompromiseAt(1.0, "n1"));
  ASSERT_TRUE(report.ok()) << report.status();

  // 0 -> 3 survives via 2; node 1's own (revoked) routes are gone.
  std::vector<Tuple> at0 = e->TuplesAt(0, "reachable");
  EXPECT_NE(std::find(at0.begin(), at0.end(), Reach(0, 3)), at0.end());
  EXPECT_TRUE(e->TuplesAt(1, "reachable").empty())
      << "everything node 1 stored was asserted by the revoked n1";
}

}  // namespace
}  // namespace provnet
