// Execution profiler, memory accounting, and cross-node causal traces
// (ISSUE 8): the observability additions must be *free* when off and
// *invisible* to the golden artifacts when on.
//
// The oracles:
//   * unit      - phase/lane accumulation, commit_serial_fraction, the
//     memory gauges' add/sub/peak discipline, and the trace.dropped_spans
//     counter;
//   * golden    - the full observability stack (profiler + memory accounting
//     + span recording) enabled vs. disabled leaves fixpoints, metric
//     snapshots, default-format trace streams, and RunStats byte-identical,
//     across ProvModes and thread counts;
//   * cost      - the disabled profiler/memory hooks price out under 2% of
//     a 50-node fixpoint's wall time;
//   * causality - a distributed ProvQuery walk's spans from three or more
//     nodes share one trace id and form a single connected tree;
//   * audit     - a comparer that lies about its assigned buckets is caught
//     by the auditor's deterministic spot-check (kLyingComparer) and the
//     suppressed conflict still reaches the findings.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/campaign.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "obs/export.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "query/provquery.h"

namespace provnet {
namespace {

Tuple Link3(NodeId a, NodeId b, int64_t c) {
  return Tuple("link", {Value::Address(a), Value::Address(b), Value::Int(c)});
}

// --- Profiler unit ----------------------------------------------------------

TEST(ProfilerTest, PhaseAndLaneAccumulation) {
  obs::Profiler prof;
  // Disabled: Scope must record nothing.
  {
    obs::Profiler::Scope scope(prof, obs::Phase::kFixpoint);
  }
  EXPECT_EQ(prof.PhaseNs(obs::Phase::kFixpoint), 0u);
  EXPECT_EQ(prof.PhaseCount(obs::Phase::kFixpoint), 0u);

  prof.Enable();
  prof.AddPhase(obs::Phase::kParallelCompute, 800);
  prof.AddPhase(obs::Phase::kCommitReplay, 200);
  prof.AddLane(0, 500);
  prof.AddLane(1, 300);
  prof.AddLane(1, 100);

  EXPECT_EQ(prof.PhaseNs(obs::Phase::kParallelCompute), 800u);
  EXPECT_EQ(prof.PhaseNs(obs::Phase::kCommitReplay), 200u);
  EXPECT_EQ(prof.num_lanes(), 2u);
  EXPECT_EQ(prof.LaneNs(0), 500u);
  EXPECT_EQ(prof.LaneNs(1), 400u);
  // commit / (parallel + commit).
  EXPECT_DOUBLE_EQ(prof.CommitSerialFraction(), 0.2);
  EXPECT_DOUBLE_EQ(prof.LaneUtilization(0), 500.0 / 800.0);

  {
    obs::Profiler::Scope scope(prof, obs::Phase::kVerify);
  }
  EXPECT_EQ(prof.PhaseCount(obs::Phase::kVerify), 1u);

  prof.Reset();
  EXPECT_EQ(prof.PhaseNs(obs::Phase::kParallelCompute), 0u);
  EXPECT_EQ(prof.num_lanes(), 0u);
  EXPECT_DOUBLE_EQ(prof.CommitSerialFraction(), 0.0);
}

// --- Memory accounting unit -------------------------------------------------

TEST(MemAccountingTest, GaugesTrackCurrentAndPeak) {
  obs::MemAccounting& mem = obs::MemAccounting::Global();
  mem.Reset();

  // Disabled hooks are no-ops.
  mem.Disable();
  mem.Add(obs::MemSubsystem::kTableRows, 100);
  EXPECT_EQ(mem.CurrentBytes(obs::MemSubsystem::kTableRows), 0u);

  mem.Enable();
  mem.Add(obs::MemSubsystem::kTableRows, 300);
  mem.Add(obs::MemSubsystem::kTableRows, 200);
  mem.Sub(obs::MemSubsystem::kTableRows, 400);
  mem.Add(obs::MemSubsystem::kBddNodes, 50);
  EXPECT_EQ(mem.CurrentBytes(obs::MemSubsystem::kTableRows), 100u);
  EXPECT_EQ(mem.PeakBytes(obs::MemSubsystem::kTableRows), 500u);
  EXPECT_EQ(mem.TotalPeakBytes(), 550u);

  std::string summary = mem.PeakSummary();
  EXPECT_NE(summary.find("table_rows=500"), std::string::npos);
  EXPECT_NE(summary.find("bdd_nodes=50"), std::string::npos);
  EXPECT_EQ(summary.find("network_queues"), std::string::npos);

  mem.Reset();
  mem.Disable();
  EXPECT_EQ(mem.TotalPeakBytes(), 0u);
}

// --- Golden determinism: observability on vs. off ---------------------------

// Every stored tuple at every node, with asserter and annotation, in a
// canonical order — byte-equal iff the fixpoints are identical.
std::string Fingerprint(Engine& engine) {
  std::ostringstream out;
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    for (Table* table : engine.node(n).AllTables()) {
      std::vector<std::string> lines;
      for (const StoredTuple* e : table->Scan()) {
        lines.push_back(e->tuple.ToString() + " by " + e->asserted_by +
                        " prov " + e->prov.ToString());
      }
      std::sort(lines.begin(), lines.end());
      for (const std::string& line : lines) {
        out << "n" << n << "|" << table->name() << "|" << line << "\n";
      }
    }
  }
  return out.str();
}

struct GoldenRun {
  std::string fingerprint;
  std::string metrics;
  std::string trace;  // default JSONL format (no spans)
  RunStats stats;
};

GoldenRun RunGolden(ProvMode mode, size_t threads, bool observe) {
  if (observe) {
    obs::MemAccounting::Global().Reset();
    obs::MemAccounting::Global().Enable();
  } else {
    obs::MemAccounting::Global().Disable();
  }
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = mode;
  opts.threads = threads;
  Rng rng(7);
  Topology topo = Topology::RingPlusRandom(24, 3, rng);
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  engine->tracer().Enable(/*capacity=*/1 << 14, /*sample_every=*/4,
                          /*record_wall=*/false, /*record_spans=*/observe);
  if (observe) engine->profiler().Enable();
  EXPECT_TRUE(engine->InsertLinkFacts().ok());
  Result<RunStats> stats = engine->Run();
  EXPECT_TRUE(stats.ok()) << stats.status();

  GoldenRun out;
  out.fingerprint = Fingerprint(*engine);
  out.metrics = obs::SnapshotJson(engine->metrics());
  // Serialized without spans on both sides: the *event stream* must be
  // identical; the ids are additive.
  out.trace = engine->tracer().ToJsonl(/*with_spans=*/false);
  out.stats = stats.value();
  obs::MemAccounting::Global().Disable();
  return out;
}

class ObsGoldenTest : public ::testing::TestWithParam<ProvMode> {};

TEST_P(ObsGoldenTest, ObservabilityOnChangesNoGoldenByte) {
  const ProvMode mode = GetParam();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    GoldenRun off = RunGolden(mode, threads, /*observe=*/false);
    GoldenRun on = RunGolden(mode, threads, /*observe=*/true);

    EXPECT_EQ(off.fingerprint, on.fingerprint);
    EXPECT_EQ(off.metrics, on.metrics);
    EXPECT_EQ(off.trace, on.trace);
    EXPECT_EQ(off.stats.sim_seconds, on.stats.sim_seconds);
    EXPECT_EQ(off.stats.deliveries, on.stats.deliveries);
    EXPECT_EQ(off.stats.messages, on.stats.messages);
    EXPECT_EQ(off.stats.bytes, on.stats.bytes);
    EXPECT_EQ(off.stats.tuple_bytes, on.stats.tuple_bytes);
    EXPECT_EQ(off.stats.auth_bytes, on.stats.auth_bytes);
    EXPECT_EQ(off.stats.prov_bytes, on.stats.prov_bytes);
    EXPECT_EQ(off.stats.events, on.stats.events);
    EXPECT_EQ(off.stats.derivations, on.stats.derivations);
    EXPECT_EQ(off.stats.join_candidates, on.stats.join_candidates);
    EXPECT_EQ(off.stats.signs, on.stats.signs);
    EXPECT_EQ(off.stats.verifies, on.stats.verifies);
    // The only permitted difference: the enabled run carries the memory
    // summary, the disabled run must not.
    EXPECT_TRUE(off.stats.peak_mem.empty());
    EXPECT_FALSE(on.stats.peak_mem.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllProvModes, ObsGoldenTest,
                         ::testing::Values(ProvMode::kNone,
                                           ProvMode::kCondensed,
                                           ProvMode::kFull),
                         [](const auto& info) {
                           return std::string(ProvModeName(info.param));
                         });

// --- Cost: disabled hooks ---------------------------------------------------

TEST(ProfilerTest, DisabledHookCostUnderTwoPercentOfFixpoint) {
  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(50, 3, rng);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  auto t0 = std::chrono::steady_clock::now();
  RunStats stats = engine->Run().value();
  auto t1 = std::chrono::steady_clock::now();
  double wall = std::chrono::duration<double>(t1 - t0).count();

  // Upper bound on profiler/memory instrumentation sites the run executed:
  // every event, delivery, message, and derivation passes a handful of
  // disabled-profiler Scopes and disabled MemAccounting hooks.
  uint64_t hooks = 4 * (stats.derivations + stats.events + stats.deliveries +
                        stats.messages + stats.join_candidates);

  // Price one disabled hook: exactly the code the hot path runs when the
  // profiler and the accounting are off — one relaxed bool load each.
  obs::Profiler prof;
  obs::MemAccounting& mem = obs::MemAccounting::Global();
  mem.Disable();
  auto h0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < hooks; ++i) {
    obs::Profiler::Scope scope(prof, obs::Phase::kEvents);
    mem.Add(obs::MemSubsystem::kTableRows, i);
  }
  auto h1 = std::chrono::steady_clock::now();
  double hook_cost = std::chrono::duration<double>(h1 - h0).count();

  EXPECT_LT(hook_cost, 0.02 * wall + 0.001)
      << "hooks=" << hooks << " wall=" << wall;
}

// --- Satellite: trace.dropped_spans -----------------------------------------

TEST(ObsTracerTest, RingWrapIncrementsDroppedSpansCounter) {
  Rng rng(7);
  Topology topo = Topology::RingPlusRandom(16, 3, rng);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  // A ring far smaller than the event volume: evictions are guaranteed.
  engine->tracer().Enable(/*capacity=*/64, /*sample_every=*/1);
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());

  const obs::Counter* dropped =
      engine->metrics().FindCounter("trace.dropped_spans", {});
  ASSERT_NE(dropped, nullptr);
  EXPECT_GT(dropped->value, 0u);
  EXPECT_EQ(dropped->value, engine->tracer().dropped());
  // The counter rides the snapshot like any other registry cell.
  EXPECT_NE(obs::SnapshotJson(engine->metrics()).find("trace.dropped_spans"),
            std::string::npos);
}

// --- Causal traces: one connected tree per distributed walk -----------------

TEST(ObsCausalTest, DistributedWalkSpansFormOneConnectedTree) {
  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(20, 3, rng);
  EngineOptions opts;
  opts.seed = 20080407;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kPointers;  // distributed walks need records
  auto engine = Engine::Create(topo, BestPathSendlogProgram(), opts).value();
  engine->tracer().Enable(/*capacity=*/1 << 15, /*sample_every=*/1,
                          /*record_wall=*/false, /*record_spans=*/true);
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());

  size_t issued = 0;
  for (const Tuple& t : engine->TuplesAt(0, "bestPath")) {
    if (issued++ >= 5) break;
    ASSERT_TRUE(ProvQueryBuilder(*engine)
                    .At(0)
                    .Of(t)
                    .WithScope(QueryScope::kDistributed)
                    .Run()
                    .ok());
  }

  // Collect the walk traces: each session root is a "provquery" event whose
  // span id doubles as the trace id.
  std::vector<const obs::TraceEvent*> events = engine->tracer().Events();
  std::set<uint64_t> walk_traces;
  for (const obs::TraceEvent* ev : events) {
    if (ev->kind == "provquery") {
      EXPECT_NE(ev->trace_id, 0u);
      EXPECT_EQ(ev->trace_id, ev->span_id);
      walk_traces.insert(ev->trace_id);
    }
  }
  ASSERT_GE(walk_traces.size(), 1u);

  size_t max_nodes = 0;
  for (uint64_t trace : walk_traces) {
    // span id -> nodes seen, and span id -> parent (the sender half of a
    // message span carries the parent link; the deliver half carries 0).
    std::map<uint64_t, uint64_t> parent_of;
    std::set<uint32_t> nodes;
    for (const obs::TraceEvent* ev : events) {
      if (ev->trace_id != trace || ev->span_id == 0) continue;
      nodes.insert(ev->node);
      auto [it, fresh] = parent_of.emplace(ev->span_id, ev->parent_span);
      if (!fresh && ev->parent_span != 0) it->second = ev->parent_span;
    }
    max_nodes = std::max(max_nodes, nodes.size());

    // Connectivity: every span must reach the root (the span whose id is
    // the trace id) by following parent links inside the span set.
    ASSERT_EQ(parent_of.count(trace), 1u);
    for (const auto& [span, parent] : parent_of) {
      uint64_t cur = span;
      size_t steps = 0;
      while (cur != trace && steps++ < parent_of.size()) {
        auto it = parent_of.find(parent_of[cur]);
        ASSERT_NE(it, parent_of.end())
            << "span " << cur << " has a parent outside the trace";
        cur = it->first;
      }
      EXPECT_EQ(cur, trace) << "span " << span << " never reaches the root";
    }
  }
  // At least one walk touched three or more nodes (the acceptance bar for
  // cross-node stitching).
  EXPECT_GE(max_nodes, 3u);
}

// --- Satellite: the lying comparer ------------------------------------------

TEST(ObsAuditTest, LyingComparerCaughtBySpotCheck) {
  Topology topo;
  topo.num_nodes = 8;
  for (NodeId i = 0; i < 8; ++i) {
    topo.edges.push_back(TopoEdge{i, static_cast<NodeId>((i + 1) % 8), 1});
  }
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());
  Adversary adversary(*engine, 11);
  // Two equivocations chosen by their bucket keys' FNV hashes: node 2's
  // conflicting bucket ("link|n2|@2,@5,") assigns to the auditor itself
  // (compared locally — immune to comparer lies), while node 3's
  // ("link|n3|@3,@1,") both lands in the auditor's 1-in-4 spot-check sample
  // and assigns to a remote comparer. Between them the audit exercises both
  // defense layers.
  ASSERT_TRUE(adversary
                  .InjectEquivocation(2, 0, Link3(2, 5, 1), 4, Link3(2, 5, 77))
                  .ok());
  ASSERT_TRUE(adversary
                  .InjectEquivocation(3, 1, Link3(3, 1, 2), 5, Link3(3, 1, 88))
                  .ok());
  ASSERT_TRUE(engine->Run().ok());

  // Baseline: an honest exchange finds both equivocators and no liars.
  std::vector<EquivocationFinding> honest =
      EquivocationAudit(*engine, {"link"}, /*skip_nodes=*/{2, 3}).value();
  ASSERT_EQ(honest.size(), 2u);
  ASSERT_EQ(engine->security_log().CountOf(SecurityEventKind::kLyingComparer),
            0u);

  // Every remote comparer now suppresses the conflicts it is asked to
  // find. The auditor's 1-in-4 spot-check re-compares a deterministic
  // sample of shipped buckets locally; a sampled conflicting bucket whose
  // comparer stayed quiet is attributable evidence.
  for (NodeId n = 0; n < engine->num_nodes(); ++n) {
    engine->SetLyingComparer(n, true);
  }
  std::vector<EquivocationFinding> audited =
      EquivocationAudit(*engine, {"link"}, /*skip_nodes=*/{2, 3}).value();
  EXPECT_GE(
      engine->security_log().CountOf(SecurityEventKind::kLyingComparer), 1u);
  // Both conflicts survive universal suppression: node 2's bucket was never
  // shipped (auditor-assigned), and node 3's sampled bucket is recovered
  // from the auditor's own digests despite the comparer's lie.
  std::set<Principal> flagged;
  for (const EquivocationFinding& f : audited) flagged.insert(f.principal);
  EXPECT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged.count(engine->PrincipalOf(2)), 1u);
  EXPECT_EQ(flagged.count(engine->PrincipalOf(3)), 1u);
  for (NodeId n = 0; n < engine->num_nodes(); ++n) {
    engine->SetLyingComparer(n, false);
  }
  // The registry cell mirrors the log.
  const obs::Counter* cell = engine->metrics().FindCounter(
      "security.events", {{"kind", "lying_comparer"}});
  ASSERT_NE(cell, nullptr);
  EXPECT_GE(cell->value, 1u);
}

}  // namespace
}  // namespace provnet
