// Observability layer (src/obs/): the typed metrics registry, the
// virtual-time tracer, the unified snapshot exporter, and their engine
// integration.
//
// The oracles:
//   * determinism  - two identical seeded runs serialize byte-identical
//     metric snapshots and trace streams (virtual time only, registry
//     iteration is key-ordered);
//   * consistency  - RunStats is a view: every flat counter equals the sum
//     of its registry cells;
//   * cost         - with tracing off, the per-event hook (one branch plus
//     one counter increment) totals under 2% of a 50-node Best-Path
//     fixpoint's wall time;
//   * satellites   - remote offline-archive hits surface in the asker's
//     QueryStats, silent claims-exchange responders become suspects rather
//     than aborting the sweep, and DerivationCount saturates instead of
//     wrapping mod 2^64.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "adversary/adversary.h"
#include "adversary/campaign.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/semiring.h"
#include "query/provquery.h"

namespace provnet {
namespace {

// --- Registry ---------------------------------------------------------------

TEST(ObsRegistryTest, LabelOrderIsCanonicalizedAndHandlesAreStable) {
  obs::Registry reg;
  obs::Counter* a = reg.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  obs::Counter* b = reg.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);  // two label permutations are one metric
  a->Add(3);
  EXPECT_EQ(reg.FindCounter("x", {{"b", "2"}, {"a", "1"}})->value, 3u);
  EXPECT_EQ(reg.FindCounter("x", {{"a", "other"}}), nullptr);

  // Interning more metrics must not move existing cells.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("y", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(reg.FindCounter("x", {{"a", "1"}, {"b", "2"}}), a);
}

TEST(ObsRegistryTest, CounterTotalSumsAcrossLabelSets) {
  obs::Registry reg;
  reg.GetCounter("rule.firings", {{"rule", "r1"}})->Add(5);
  reg.GetCounter("rule.firings", {{"rule", "r2"}})->Add(7);
  reg.GetCounter("rule.firingsx")->Add(100);  // name prefix, not the name
  reg.GetCounter("rule.firing")->Add(100);
  EXPECT_EQ(reg.CounterTotal("rule.firings"), 12u);
  EXPECT_EQ(reg.CounterTotal("absent"), 0u);
}

TEST(ObsHistogramTest, TracksMomentsAndQuantilesWithinBucketResolution) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(double(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Quarter-octave buckets are good to ~19%; quantiles must land near the
  // true order statistics and never outside the observed range.
  EXPECT_GE(h.Quantile(0.5), 40.0);
  EXPECT_LE(h.Quantile(0.5), 60.0);
  EXPECT_GE(h.Quantile(0.99), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
}

TEST(ObsHistogramTest, NonPositiveObservationsCollapseIntoZeroBucket) {
  obs::Histogram h;
  h.Observe(0.0);
  h.Observe(-2.5);
  h.Observe(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -2.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_LE(h.Quantile(0.5), 0.0);
}

// --- Tracer -----------------------------------------------------------------

obs::TraceEvent Ev(double t, const char* kind) {
  obs::TraceEvent ev;
  ev.sim_time = t;
  ev.kind = kind;
  return ev;
}

TEST(ObsTracerTest, RingEvictsOldestAndCountsDrops) {
  obs::Tracer tr;
  tr.Enable(/*capacity=*/2);
  tr.Emit(Ev(1.0, "a"));
  tr.Emit(Ev(2.0, "b"));
  tr.Emit(Ev(3.0, "c"));
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.total_emitted(), 3u);
  EXPECT_EQ(tr.dropped(), 1u);
  std::vector<const obs::TraceEvent*> events = tr.Events();
  EXPECT_EQ(events[0]->kind, "b");  // oldest surviving first
  EXPECT_EQ(events[1]->kind, "c");
}

TEST(ObsTracerTest, SamplingIsDeterministicOneInK) {
  obs::Tracer tr;
  tr.Enable(/*capacity=*/64, /*sample_every=*/4);
  int kept = 0;
  for (int i = 0; i < 16; ++i) {
    if (tr.Sample()) ++kept;
  }
  EXPECT_EQ(kept, 4);

  obs::Tracer off;
  EXPECT_FALSE(off.Sample());  // disabled tracer never samples
  EXPECT_FALSE(off.enabled());
}

TEST(ObsTracerTest, JsonlOmitsWallTimeByDefault) {
  obs::Tracer tr;
  tr.Enable(4);
  obs::TraceEvent ev = Ev(1.5, "fire");
  ev.node = 7;
  ev.attrs = {{"rule", "r\"1\""}};
  tr.Emit(std::move(ev));
  std::string jsonl = tr.ToJsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"fire\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"rule\":\"r\\\"1\\\"\""), std::string::npos);
  EXPECT_EQ(jsonl.find("wall_time"), std::string::npos);
}

// --- Exporter ---------------------------------------------------------------

TEST(ObsExportTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ObsExportTest, SnapshotIsByteIdenticalForIdenticalRegistries) {
  auto populate = [](obs::Registry& reg) {
    reg.GetCounter("z.last")->Add(1);
    reg.GetCounter("a.first", {{"k", "v"}})->Add(2);
    reg.GetGauge("g")->Set(0.25);
    obs::Histogram* h = reg.GetHistogram("h", {{"q", "1"}});
    h->Observe(0.001);
    h->Observe(0.01);
  };
  obs::Registry r1, r2;
  populate(r1);
  populate(r2);
  EXPECT_EQ(obs::SnapshotJson(r1), obs::SnapshotJson(r2));
  EXPECT_EQ(obs::SnapshotText(r1), obs::SnapshotText(r2));
  // Names sort before: a.first precedes z.last regardless of insert order.
  std::string json = obs::SnapshotJson(r1);
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
}

// --- Engine integration -----------------------------------------------------

Tuple Link2(NodeId a, NodeId b) {
  return Tuple("link", {Value::Address(a), Value::Address(b)});
}

Tuple Reach(NodeId a, NodeId b) {
  return Tuple("reachable", {Value::Address(a), Value::Address(b)});
}

std::unique_ptr<Engine> RunReach(const Topology& topo, EngineOptions opts,
                                 bool trace = false) {
  auto engine =
      Engine::Create(topo, ReachableSendlogProgram(), std::move(opts)).value();
  if (trace) engine->tracer().Enable(/*capacity=*/4096, /*sample_every=*/4);
  for (const TopoEdge& e : topo.edges) {
    EXPECT_TRUE(engine->InsertFact(e.from, Link2(e.from, e.to)).ok());
  }
  EXPECT_TRUE(engine->Run().ok());
  return engine;
}

EngineOptions PointerAuthOptions() {
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kPointers;
  return opts;
}

TEST(ObsEngineTest, RunStatsIsAViewOverTheRegistry) {
  Rng rng(11);
  Topology topo = Topology::RingPlusRandom(10, 3, rng);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  auto engine =
      Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());

  const RunStats& stats = engine->cumulative_stats();
  const obs::Registry& reg = engine->metrics();
  EXPECT_GT(stats.derivations, 0u);
  EXPECT_EQ(stats.derivations, reg.CounterTotal("rule.derivations"));
  EXPECT_EQ(stats.join_candidates, reg.CounterTotal("rule.candidates"));
  EXPECT_EQ(stats.deliveries, reg.CounterTotal("engine.deliveries"));
  EXPECT_EQ(stats.events, reg.CounterTotal("engine.events"));
  EXPECT_EQ(stats.tuple_bytes, reg.CounterTotal("net.tuple_bytes"));
  // Per-link bytes split by message kind partition the byte counters that
  // go over the wire.
  EXPECT_EQ(reg.CounterTotal("net.link.bytes"),
            stats.tuple_bytes + stats.auth_bytes + stats.prov_bytes +
                reg.CounterTotal("provquery.bytes"));
  // Per-rule firing counters exist for every compiled rule label.
  EXPECT_GT(reg.CounterTotal("rule.firings"), 0u);
}

TEST(ObsEngineTest, IdenticalSeededRunsEmitByteIdenticalTelemetry) {
  auto one_run = [](std::string* snapshot, std::string* trace) {
    Rng rng(20080407);
    Topology topo = Topology::RingPlusRandom(12, 3, rng);
    auto engine = RunReach(topo, PointerAuthOptions(), /*trace=*/true);
    // A couple of distributed walks so query metrics and spans are covered.
    int queries = 0;
    for (const Tuple& t : engine->TuplesAt(0, "reachable")) {
      if (queries++ >= 2) break;
      ASSERT_TRUE(ProvQueryBuilder(*engine)
                      .At(0)
                      .Of(t)
                      .WithScope(QueryScope::kDistributed)
                      .Run()
                      .ok());
    }
    *snapshot = obs::SnapshotJson(engine->metrics());
    *trace = engine->tracer().ToJsonl();
  };
  std::string snap1, trace1, snap2, trace2;
  one_run(&snap1, &trace1);
  one_run(&snap2, &trace2);
  EXPECT_GT(snap1.size(), 0u);
  EXPECT_GT(trace1.size(), 0u);
  EXPECT_EQ(snap1, snap2);
  EXPECT_EQ(trace1, trace2);
}

TEST(ObsEngineTest, DisabledTracingHookCostUnderTwoPercentOfFixpoint) {
  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(50, 3, rng);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  auto engine =
      Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  auto t0 = std::chrono::steady_clock::now();
  RunStats stats = engine->Run().value();
  auto t1 = std::chrono::steady_clock::now();
  double wall = std::chrono::duration<double>(t1 - t0).count();

  // Upper bound on instrumentation sites executed during the run: every
  // candidate, firing, derivation, event, delivery, and message runs a
  // handful of hooks (a disabled-tracer branch and/or a cell increment).
  uint64_t hooks = 4 * (stats.join_candidates + stats.derivations +
                        stats.events + stats.deliveries + stats.messages);

  // Price one disabled hook: the exact code the hot path runs when tracing
  // is off — a branch on enabled_ plus a raw counter increment.
  obs::Tracer tracer;
  obs::Counter cell;
  uint64_t acc = 0;
  auto h0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < hooks; ++i) {
    if (tracer.Sample()) acc ^= i;
    ++cell.value;
  }
  auto h1 = std::chrono::steady_clock::now();
  asm volatile("" ::"r"(acc), "r"(cell.value));
  double hook_cost = std::chrono::duration<double>(h1 - h0).count();

  EXPECT_LT(hook_cost, 0.02 * wall + 0.001)
      << "hooks=" << hooks << " wall=" << wall;
}

// --- Satellite: responder-side offline-archive hits -------------------------

TEST(ObsQueryTest, RemoteOfflineArchiveHitsSurfaceInAskerStats) {
  Topology topo = Topology::Line(4);
  EngineOptions opts = PointerAuthOptions();
  opts.record_offline = true;
  auto engine = RunReach(topo, opts);

  // Age out every *remote* online store: the asker's own records stay
  // online, so any offline hit must have crossed the wire in a response's
  // archive flag.
  for (NodeId n = 1; n < engine->num_nodes(); ++n) {
    engine->node(n).online_store().Clear();
  }
  QueryResult result = ProvQueryBuilder(*engine)
                           .At(0)
                           .Of(Reach(0, 3))
                           .WithScope(QueryScope::kDistributed)
                           .Run()
                           .value();
  EXPECT_GT(result.stats.responses, 0u);
  EXPECT_GT(result.stats.offline_hits, 0u);
  EXPECT_EQ(engine->metrics().CounterTotal("provquery.offline_hits"),
            result.stats.offline_hits);
  // The proof is still complete: archives answered what online stores lost.
  for (const ProofNode& pn : result.dag.nodes) {
    EXPECT_NE(pn.rule, kMissingRule);
  }
}

// --- Satellite: silent claims-exchange responders ---------------------------

TEST(ObsAuditTest, SilentResponderBecomesSuspectInsteadOfAbortingSweep) {
  Topology topo;
  topo.num_nodes = 6;
  for (NodeId i = 0; i < 6; ++i) {
    topo.edges.push_back(TopoEdge{i, static_cast<NodeId>((i + 1) % 6), 1});
  }
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());

  // Node 2 suppresses everything it would send: its claims response never
  // arrives.
  Adversary adversary(*engine, 7);
  AdversaryPolicy policy;
  policy.drop_rate = 1.0;
  adversary.Compromise(2, policy);

  ClaimsExchange exchange(*engine, /*auditor=*/0);
  Result<std::vector<ClaimsExchange::Claim>> claims =
      exchange.Collect({"link"}, /*skip_nodes=*/{});
  // The sweep completes over the answers it did get...
  ASSERT_TRUE(claims.ok()) << claims.status().ToString();
  EXPECT_GT(claims.value().size(), 0u);
  // ...and silence is attributed, not swallowed.
  ASSERT_EQ(exchange.silent().size(), 1u);
  EXPECT_EQ(*exchange.silent().begin(), 2u);
  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kSilentResponder),
      1u);
  const obs::Counter* cell = engine->metrics().FindCounter(
      "security.events", {{"kind", "silent_responder"}});
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->value, 1u);

  // The audit entry point surfaces the same suspects.
  std::set<NodeId> silent;
  ASSERT_TRUE(EquivocationAudit(*engine, {"link"}, /*skip_nodes=*/{},
                                /*auditor=*/std::nullopt, &silent)
                  .ok());
  EXPECT_EQ(silent, std::set<NodeId>{2});
}

// --- Satellite: saturating derivation counts --------------------------------

// count = 2^k: a conjunction of k independent two-way choices. (Plus is
// idempotent on physically-shared nodes, so each pair needs fresh vars.)
ProvExpr PowTwo(int k) {
  ProvExpr e = ProvExpr::One();
  for (int i = 0; i < k; ++i) {
    e = ProvExpr::Times(e, ProvExpr::Plus(ProvExpr::Var(2 * i + 1),
                                          ProvExpr::Var(2 * i + 2)));
  }
  return e;
}

TEST(ObsSemiringTest, DerivationCountSaturatesInsteadOfWrapping) {
  EXPECT_EQ(DerivationCount(PowTwo(10)), 1024u);
  EXPECT_EQ(DerivationCount(PowTwo(63)), uint64_t{1} << 63);  // still exact

  ProvExpr e64 = PowTwo(64);  // 2^64: first value past the word
  EXPECT_EQ(DerivationCount(e64), UINT64_MAX);
  EXPECT_EQ(DerivationCountExact(e64).ToDecimal(), "18446744073709551616");

  ProvExpr e70 = PowTwo(70);
  EXPECT_EQ(DerivationCount(e70), UINT64_MAX);
  EXPECT_EQ(DerivationCountExact(e70),
            BigInt::FromU64(1).ShiftLeft(70));

  // Mod-2^64 arithmetic would report 0 here; saturation must not.
  EXPECT_NE(DerivationCount(e64), 0u);
}

}  // namespace
}  // namespace provnet
