// Durable provenance store (ISSUE 9): the paged byte log, the framed
// archive on top of it, the hash-consed derivation arena, and the engine's
// end-to-end crash recovery.
//
// The oracles:
//   * byte-log     - PageFile round-trips appended bytes through the page
//     boundary, survives a reopen byte-for-byte, truncates and atomically
//     rewrites; the LRU read cache never changes what a read returns;
//   * archive      - ProvArchive decodes records identical (serialized
//     bytes) to what was added, replays its log on reopen including evict
//     and persist frames, compacts dead records away, and truncates a torn
//     tail instead of failing recovery;
//   * arena        - Canonical() interns structurally-equal derivations to
//     one id, the expression/count/wire/annotation/decode caches answer
//     what was put in them and nothing else;
//   * crash        - a full-provenance engine restarted over its archive
//     directory answers the same distributed provenance query with
//     byte-identical ProofDag CanonicalBytes, without re-running the
//     protocol — even when the log tail was torn mid-frame.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "provenance/derivation.h"
#include "provenance/semiring.h"
#include "provenance/store.h"
#include "query/provquery.h"
#include "store/archive.h"
#include "store/arena.h"
#include "store/pagefile.h"
#include "util/bytes.h"
#include "util/random.h"

namespace provnet {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() /
              ("provnet_store_test_" + name + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string File(const std::string& leaf) const {
    return (path_ / leaf).string();
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

Bytes Payload(uint8_t tag, size_t len) {
  Bytes out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>(tag + i * 7);
  }
  return out;
}

// --- PageFile ---------------------------------------------------------------

TEST(PageFileTest, MemoryModeRoundTripsAcrossPageBoundaries) {
  store::PageFile file;
  ASSERT_TRUE(file.Open("", {.page_bytes = 64, .cache_pages = 4}).ok());
  EXPECT_FALSE(file.on_disk());

  std::vector<std::pair<uint64_t, Bytes>> written;
  for (uint8_t i = 0; i < 10; ++i) {
    Bytes b = Payload(i, 40 + i * 11);  // lengths straddle the 64B pages
    written.emplace_back(file.Append(b.data(), b.size()), b);
  }
  EXPECT_EQ(file.end_offset(), written.back().first + written.back().second.size());

  for (const auto& [off, bytes] : written) {
    Bytes back;
    ASSERT_TRUE(file.Read(off, bytes.size(), &back));
    EXPECT_EQ(back, bytes);
  }
  // Out-of-range reads fail instead of fabricating bytes.
  Bytes back;
  EXPECT_FALSE(file.Read(file.end_offset(), 1, &back));
  EXPECT_EQ(file.DiskBytes(), 0u);  // memory mode never touches disk
}

TEST(PageFileTest, DiskModePersistsAcrossReopen) {
  TempDir dir("pagefile_reopen");
  const std::string path = dir.File("log.pages");
  Bytes a = Payload(1, 100), b = Payload(2, 200);
  uint64_t off_a, off_b, end;
  {
    store::PageFile file;
    ASSERT_TRUE(file.Open(path, {.page_bytes = 64, .cache_pages = 4}).ok());
    EXPECT_TRUE(file.on_disk());
    off_a = file.Append(a.data(), a.size());
    off_b = file.Append(b.data(), b.size());
    end = file.end_offset();
    ASSERT_TRUE(file.Flush().ok());
    EXPECT_GT(file.DiskBytes(), 0u);
  }
  store::PageFile file;
  ASSERT_TRUE(file.Open(path, {.page_bytes = 64, .cache_pages = 4}).ok());
  EXPECT_EQ(file.end_offset(), end);  // resumes exactly where it stopped
  Bytes back;
  ASSERT_TRUE(file.Read(off_a, a.size(), &back));
  EXPECT_EQ(back, a);
  ASSERT_TRUE(file.Read(off_b, b.size(), &back));
  EXPECT_EQ(back, b);
  // And appending after a reopen keeps the log consistent.
  Bytes c = Payload(3, 77);
  uint64_t off_c = file.Append(c.data(), c.size());
  ASSERT_TRUE(file.Read(off_c, c.size(), &back));
  EXPECT_EQ(back, c);
}

TEST(PageFileTest, TinyLruCacheNeverChangesReadResults) {
  TempDir dir("pagefile_lru");
  store::PageFile file;
  // 2 cached pages over a log spanning ~30 pages: most reads miss.
  ASSERT_TRUE(
      file.Open(dir.File("log.pages"), {.page_bytes = 64, .cache_pages = 2})
          .ok());
  std::vector<std::pair<uint64_t, Bytes>> written;
  for (int i = 0; i < 30; ++i) {
    Bytes b = Payload(static_cast<uint8_t>(i), 60);
    written.emplace_back(file.Append(b.data(), b.size()), b);
  }
  ASSERT_TRUE(file.Flush().ok());
  (void)file.TakeIo();

  // Alternate between far-apart offsets to churn the LRU.
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < written.size(); ++i) {
      size_t pick = (i % 2 == 0) ? i / 2 : written.size() - 1 - i / 2;
      Bytes back;
      ASSERT_TRUE(file.Read(written[pick].first, written[pick].second.size(),
                            &back));
      EXPECT_EQ(back, written[pick].second);
    }
  }
  EXPECT_GT(file.TakeIo().page_reads, 0u);  // the cache actually missed
}

TEST(PageFileTest, TruncateToDropsTail) {
  store::PageFile file;
  ASSERT_TRUE(file.Open("", {.page_bytes = 64, .cache_pages = 4}).ok());
  Bytes a = Payload(1, 100), b = Payload(2, 100);
  uint64_t off_a = file.Append(a.data(), a.size());
  uint64_t off_b = file.Append(b.data(), b.size());
  ASSERT_TRUE(file.TruncateTo(off_b).ok());
  EXPECT_EQ(file.end_offset(), off_b);
  Bytes back;
  ASSERT_TRUE(file.Read(off_a, a.size(), &back));
  EXPECT_EQ(back, a);
  EXPECT_FALSE(file.Read(off_b, b.size(), &back));  // gone
  // The truncated region is reusable.
  Bytes c = Payload(3, 50);
  uint64_t off_c = file.Append(c.data(), c.size());
  EXPECT_EQ(off_c, off_b);
  ASSERT_TRUE(file.Read(off_c, c.size(), &back));
  EXPECT_EQ(back, c);
}

TEST(PageFileTest, RewriteReplacesLogAtomically) {
  TempDir dir("pagefile_rewrite");
  const std::string path = dir.File("log.pages");
  store::PageFile file;
  ASSERT_TRUE(file.Open(path, {.page_bytes = 64, .cache_pages = 4}).ok());
  Bytes old = Payload(1, 300);
  file.Append(old.data(), old.size());
  ASSERT_TRUE(file.Flush().ok());

  Bytes fresh = Payload(9, 150);
  ASSERT_TRUE(file.Rewrite(fresh).ok());
  EXPECT_EQ(file.end_offset(), fresh.size());
  Bytes back;
  ASSERT_TRUE(file.Read(0, fresh.size(), &back));
  EXPECT_EQ(back, fresh);

  // No .tmp litter, and a reopen sees only the new log.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  store::PageFile again;
  ASSERT_TRUE(again.Open(path, {.page_bytes = 64, .cache_pages = 4}).ok());
  EXPECT_EQ(again.end_offset(), fresh.size());
  ASSERT_TRUE(again.Read(0, fresh.size(), &back));
  EXPECT_EQ(back, fresh);
}

// --- ProvArchive ------------------------------------------------------------

ProvRecord MakeRecord(const Tuple& t, const std::string& rule, NodeId loc,
                      const Principal& who, double created) {
  ProvRecord rec;
  rec.tuple = t;
  rec.rule = rule;
  rec.location = loc;
  rec.asserted_by = who;
  rec.created_at = created;
  return rec;
}

Bytes RecordBytes(const ProvRecord& rec) {
  ByteWriter w;
  rec.Serialize(w);
  return w.bytes();
}

// The archive must reproduce records *byte-for-byte*, not just field-wise:
// ProofDag identity across restarts depends on it.
void ExpectSameRecords(const std::vector<ProvRecord>& got,
                       const std::vector<ProvRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(RecordBytes(got[i]), RecordBytes(want[i])) << "record " << i;
  }
}

store::ArchiveOptions SmallPages() {
  store::ArchiveOptions opts;
  opts.page.page_bytes = 128;
  opts.page.cache_pages = 4;
  return opts;
}

TEST(ProvArchiveTest, RoundTripsAllQueryAxes) {
  store::ProvArchive archive;
  ASSERT_TRUE(archive.Open("", SmallPages()).ok());

  Tuple ta("link", {Value::Address(0), Value::Address(1)});
  Tuple tb("bestPath", {Value::Address(0), Value::Address(2)});
  ProvRecord ra = MakeRecord(ta, "base", 0, "n0", 1.0);
  ProvRecord rb1 = MakeRecord(tb, "sp2", 0, "n0", 2.0);
  ProvRecord rb2 = MakeRecord(tb, "sp2", 0, "n1", 3.0);
  // One record with a remote child ref, to exercise child encoding.
  ProvChildRef ref;
  ref.node = 1;
  ref.digest = DigestOf(ta);
  ref.asserted_by = "n1";
  rb2.children.push_back(ref);

  archive.Add(ra);
  archive.Add(rb1);
  archive.Add(rb2);
  EXPECT_EQ(archive.size(), 3u);
  EXPECT_GT(archive.ApproxBytes(), 0u);

  ExpectSameRecords(archive.FindByDigest(DigestOf(ta)), {ra});
  ExpectSameRecords(archive.FindByDigest(DigestOf(tb)), {rb1, rb2});
  ExpectSameRecords(archive.FindByPredicate("bestPath"), {rb1, rb2});
  ExpectSameRecords(archive.FindInWindow(1.5, 2.5), {rb1});
  EXPECT_TRUE(archive.FindByDigest(0xdeadbeef).empty());
}

TEST(ProvArchiveTest, EvictRespectsPersistMarks) {
  store::ProvArchive archive;
  ASSERT_TRUE(archive.Open("", SmallPages()).ok());
  Tuple told("x", {Value::Int(1)});
  Tuple tnew("x", {Value::Int(2)});
  archive.Add(MakeRecord(told, "r", 0, "a", 1.0));
  archive.Add(MakeRecord(tnew, "r", 0, "a", 5.0));

  EXPECT_EQ(archive.MarkPersistent(DigestOf(told)), 1u);
  EXPECT_EQ(archive.EvictOlderThan(4.0), 0u);  // persist-marked survives
  EXPECT_EQ(archive.size(), 2u);

  archive.Add(MakeRecord(Tuple("y", {Value::Int(3)}), "r", 0, "a", 2.0));
  EXPECT_EQ(archive.EvictOlderThan(4.0), 1u);  // the unmarked old record
  EXPECT_EQ(archive.size(), 2u);
  EXPECT_EQ(archive.FindByDigest(DigestOf(told)).size(), 1u);
  EXPECT_TRUE(archive.FindByPredicate("y").empty());
}

TEST(ProvArchiveTest, CompactionDropsDeadRecordsFromDisk) {
  TempDir dir("archive_compact");
  store::ArchiveOptions opts = SmallPages();
  opts.compact_min_dead = 4;  // compact eagerly for the test
  store::ProvArchive archive;
  ASSERT_TRUE(archive.Open(dir.File("node0.prov"), opts).ok());

  Tuple keep("keep", {Value::Int(0)});
  archive.Add(MakeRecord(keep, "r", 0, "a", 100.0));
  for (int i = 0; i < 32; ++i) {
    archive.Add(MakeRecord(Tuple("junk", {Value::Int(i)}), "r", 0, "a", 1.0));
  }
  ASSERT_TRUE(archive.Flush().ok());
  const uint64_t disk_before = archive.DiskBytes();
  (void)archive.TakeIo();

  EXPECT_EQ(archive.EvictOlderThan(50.0), 32u);
  EXPECT_GE(archive.TakeIo().compactions, 1u);
  ASSERT_TRUE(archive.Flush().ok());
  EXPECT_LT(archive.DiskBytes(), disk_before);  // snapshot shed dead bytes

  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.FindByDigest(DigestOf(keep)).size(), 1u);
  EXPECT_TRUE(archive.FindByPredicate("junk").empty());
}

TEST(ProvArchiveTest, ReopenReplaysRecordsEvictionsAndPersistMarks) {
  TempDir dir("archive_reopen");
  const std::string path = dir.File("node0.prov");
  Tuple kept("kept", {Value::Int(1)});
  Tuple marked("marked", {Value::Int(2)});
  std::vector<ProvRecord> want_kept, want_marked;
  {
    store::ProvArchive archive;
    ASSERT_TRUE(archive.Open(path, SmallPages()).ok());
    ProvRecord rm = MakeRecord(marked, "r", 0, "a", 1.0);
    ProvRecord rk = MakeRecord(kept, "r", 0, "a", 9.0);
    archive.Add(rm);
    archive.Add(MakeRecord(Tuple("aged", {Value::Int(3)}), "r", 0, "a", 1.5));
    archive.Add(rk);
    archive.MarkPersistent(DigestOf(marked));
    archive.EvictOlderThan(5.0);  // drops "aged", keeps the marked record
    ASSERT_TRUE(archive.Flush().ok());
    // Fingerprint what the live archive answers (persist marks included):
    // replay must reproduce exactly this.
    want_marked = archive.FindByDigest(DigestOf(marked));
    want_kept = archive.FindByDigest(DigestOf(kept));
    EXPECT_EQ(archive.size(), 2u);
  }
  store::ProvArchive archive;
  ASSERT_TRUE(archive.Open(path, SmallPages()).ok());
  EXPECT_EQ(archive.size(), 2u);
  ExpectSameRecords(archive.FindByDigest(DigestOf(kept)), want_kept);
  ExpectSameRecords(archive.FindByDigest(DigestOf(marked)), want_marked);
  EXPECT_TRUE(archive.FindByPredicate("aged").empty());
  // Replayed persist marks still shield the record from further aging.
  EXPECT_EQ(archive.EvictOlderThan(5.0), 0u);
}

// Append raw garbage to a finished log: a crash mid-frame leaves exactly
// this shape (intact prefix + partial frame).
void TearTail(const std::string& path, const Bytes& garbage) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(garbage.data(), 1, garbage.size(), f), garbage.size());
  std::fclose(f);
}

TEST(ProvArchiveTest, TornTailGarbageIsTruncatedOnRecovery) {
  TempDir dir("archive_torn_garbage");
  const std::string path = dir.File("node0.prov");
  Tuple t("x", {Value::Int(7)});
  std::vector<ProvRecord> want;
  {
    store::ProvArchive archive;
    ASSERT_TRUE(archive.Open(path, SmallPages()).ok());
    for (int i = 0; i < 5; ++i) {
      ProvRecord rec = MakeRecord(t, "r", 0, "a", 1.0 + i);
      archive.Add(rec);
      want.push_back(rec);
    }
    ASSERT_TRUE(archive.Flush().ok());
  }
  TearTail(path, Payload(0xEE, 11));  // half-written frame at the tail

  store::ProvArchive archive;
  ASSERT_TRUE(archive.Open(path, SmallPages()).ok());  // recovery, not error
  EXPECT_EQ(archive.size(), 5u);                       // intact prefix whole
  ExpectSameRecords(archive.FindByDigest(DigestOf(t)), want);
  // The archive is writable again after recovery.
  archive.Add(MakeRecord(t, "r", 0, "a", 9.0));
  EXPECT_EQ(archive.size(), 6u);
}

TEST(ProvArchiveTest, TornFinalRecordIsDroppedNotFatal) {
  TempDir dir("archive_torn_record");
  const std::string path = dir.File("node0.prov");
  Tuple t("x", {Value::Int(7)});
  {
    store::ProvArchive archive;
    ASSERT_TRUE(archive.Open(path, SmallPages()).ok());
    for (int i = 0; i < 5; ++i) {
      archive.Add(MakeRecord(t, "r", 0, "a", 1.0 + i));
    }
    ASSERT_TRUE(archive.Flush().ok());
  }
  // Chop bytes off the last frame's checksum: the record is torn.
  fs::resize_file(path, fs::file_size(path) - 3);

  store::ProvArchive archive;
  ASSERT_TRUE(archive.Open(path, SmallPages()).ok());
  EXPECT_EQ(archive.size(), 4u);  // every intact record survives
  EXPECT_EQ(archive.FindByDigest(DigestOf(t)).size(), 4u);
}

// --- ProvArena --------------------------------------------------------------

// Two structurally-identical trees built from distinct allocations.
DerivationPtr BuildTree(double base_time) {
  Tuple link("link", {Value::Address(0), Value::Address(1)});
  Tuple path("path", {Value::Address(0), Value::Address(1)});
  DerivationPtr leaf = MakeBaseDerivation(link, 0, "n0", base_time, -1.0);
  return MakeRuleDerivation(path, "sp1", 0, "n0", base_time, -1.0, {leaf});
}

TEST(ProvArenaTest, CanonicalInternsStructurallyEqualTrees) {
  store::ProvArena arena;
  DerivationPtr first = BuildTree(1.0);
  DerivationPtr second = BuildTree(1.0);  // equal content, different nodes
  ASSERT_NE(first.get(), second.get());

  store::DerivId id1 = 0, id2 = 0;
  DerivationPtr canon1 = arena.Canonical(first, &id1);
  DerivationPtr canon2 = arena.Canonical(second, &id2);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(canon1.get(), canon2.get());  // one owned copy, process-wide
  EXPECT_EQ(arena.NodeCount(), 2u);       // leaf + rule node

  store::ProvArena::Stats stats = arena.TakeStats();
  EXPECT_EQ(stats.interned_nodes, 2u);
  EXPECT_GE(stats.interned_hits, 2u);  // the whole second tree deduped

  // All three id lookups agree.
  EXPECT_EQ(arena.Lookup(id1).get(), canon1.get());
  EXPECT_EQ(arena.IdOf(first->ContentDigest()), id1);
  EXPECT_EQ(arena.IdOfOwned(canon1.get()), id1);
  // `first` was adopted wholesale (its nodes ARE the arena's); the deduped
  // second tree stays foreign to the identity map.
  EXPECT_EQ(arena.IdOfOwned(second.get()), 0u);
  EXPECT_EQ(arena.Lookup(0), nullptr);

  // A different tree gets a different id.
  store::DerivId id3 = 0;
  arena.Canonical(BuildTree(2.0), &id3);
  EXPECT_NE(id3, id1);
}

TEST(ProvArenaTest, CanonicalRebuildsParentsAroundOwnedChildren) {
  store::ProvArena arena;
  DerivationPtr child = BuildTree(1.0);
  store::DerivId child_id = 0;
  DerivationPtr owned_child = arena.Canonical(child, &child_id);

  // A parent built over the *non-canonical* child must come out holding the
  // arena's copy.
  Tuple best("bestPath", {Value::Address(0), Value::Address(1)});
  DerivationPtr parent =
      MakeRuleDerivation(best, "sp3", 0, "n0", 2.0, -1.0, {child});
  store::DerivId parent_id = 0;
  DerivationPtr canon_parent = arena.Canonical(parent, &parent_id);
  ASSERT_EQ(canon_parent->children.size(), 1u);
  EXPECT_EQ(canon_parent->children[0].get(), owned_child.get());
  // Rebuilding preserved content: digests match the original.
  EXPECT_EQ(arena.IdOf(parent->ContentDigest()), parent_id);
}

TEST(ProvArenaTest, ExpressionInterningSharesNodes) {
  store::ProvArena arena;
  ProvExpr a = arena.InternVar(1);
  ProvExpr b = arena.InternVar(1);
  EXPECT_EQ(a.NodeIdentity(), b.NodeIdentity());

  // Same structure from separate constructions -> same physical node.
  ProvExpr e1 = arena.InternTimes(arena.InternVar(1), arena.InternVar(2));
  ProvExpr e2 = arena.InternTimes(arena.InternVar(1), arena.InternVar(2));
  EXPECT_EQ(e1.NodeIdentity(), e2.NodeIdentity());

  // InternExpr rebuilds an outside expression onto the arena's nodes.
  ProvExpr outside = ProvExpr::Times(ProvExpr::Var(1), ProvExpr::Var(2));
  EXPECT_EQ(arena.InternExpr(outside).NodeIdentity(), e1.NodeIdentity());

  // Semiring shortcuts match the ProvExpr factories.
  EXPECT_TRUE(arena.InternPlus(ProvExpr::Zero(), a).Equals(a));
  EXPECT_TRUE(arena.InternTimes(ProvExpr::One(), a).Equals(a));
  EXPECT_TRUE(arena.InternTimes(ProvExpr::Zero(), a).IsZero());
}

TEST(ProvArenaTest, CountExactMatchesUnmemoizedCount) {
  store::ProvArena arena;
  // (v1 * v2) + (v1 * v3): two derivations.
  ProvExpr e = ProvExpr::Plus(ProvExpr::Times(ProvExpr::Var(1), ProvExpr::Var(2)),
                              ProvExpr::Times(ProvExpr::Var(1), ProvExpr::Var(3)));
  BigInt direct = DerivationCountExact(e);
  EXPECT_TRUE(arena.CountExact(e) == direct);
  // Second count hits the persistent memo and still agrees.
  EXPECT_TRUE(arena.CountExact(e) == direct);
}

TEST(ProvArenaTest, DecodeCacheMapsShippedBytesBackToRoot) {
  store::ProvArena arena;
  store::DerivId id = 0;
  DerivationPtr canon = arena.Canonical(BuildTree(1.0), &id);

  // SendTuple's priming: the exact serialized bytes of the canonical node.
  ByteWriter w;
  canon->Serialize(w);
  const Bytes& wire = w.bytes();
  EXPECT_EQ(arena.CachedDecode(wire.data(), wire.size()), 0u);  // not yet
  arena.CacheDecode(wire.data(), wire.size(), id);
  EXPECT_EQ(arena.CachedDecode(wire.data(), wire.size()), id);

  // A forged payload (different bytes) misses and must take the slow path.
  Bytes forged = wire;
  forged.back() ^= 0x01;
  EXPECT_EQ(arena.CachedDecode(forged.data(), forged.size()), 0u);
}

TEST(ProvArenaTest, WireAndAnnotationCachesRoundTrip) {
  store::ProvArena arena;
  store::DerivId id = 0;
  arena.Canonical(BuildTree(1.0), &id);

  EXPECT_EQ(arena.CachedWire(id), nullptr);
  arena.CacheWire(id, Payload(5, 32));
  ASSERT_NE(arena.CachedWire(id), nullptr);
  EXPECT_EQ(*arena.CachedWire(id), Payload(5, 32));

  // Sender-independent and sender-keyed annotation entries are disjoint.
  ProvExpr ann = arena.InternVar(7);
  EXPECT_EQ(arena.CachedAnnotation(id), nullptr);
  arena.CacheAnnotation(id, ann);
  ASSERT_NE(arena.CachedAnnotation(id), nullptr);
  EXPECT_TRUE(arena.CachedAnnotation(id)->Equals(ann));

  ProvExpr sender_ann = arena.InternTimes(ann, arena.InternVar(8));
  EXPECT_EQ(arena.CachedAnnotation(id, /*sender=*/8), nullptr);
  arena.CacheAnnotation(id, /*sender=*/8, sender_ann);
  ASSERT_NE(arena.CachedAnnotation(id, 8), nullptr);
  EXPECT_TRUE(arena.CachedAnnotation(id, 8)->Equals(sender_ann));
  EXPECT_EQ(arena.CachedAnnotation(id, 9), nullptr);

  EXPECT_GT(arena.ResidentBytes(), 0u);  // caches are accounted
}

// --- Engine crash recovery --------------------------------------------------

// Full-provenance engine over an on-disk archive directory: run the
// protocol once, fingerprint a distributed proof, "crash", restart over the
// same directory, and demand the byte-identical proof without re-running.
class DurableEngineTest : public ::testing::Test {
 protected:
  EngineOptions ArchiveOptions(const std::string& dir) {
    EngineOptions opts;
    opts.prov_mode = ProvMode::kFull;
    opts.record_offline = true;
    opts.archive_dir = dir;
    opts.archive_page_bytes = 1024;  // small pages: exercise page churn
    opts.archive_cache_pages = 8;
    return opts;
  }

  // Runs the fixpoint, picks node 0's longest bestPath, and returns the
  // canonical bytes of its distributed proof DAG.
  Bytes RunAndFingerprint(const Topology& topo, const EngineOptions& opts,
                          Tuple* suspect) {
    auto engine_or = Engine::Create(topo, BestPathNdlogProgram(), opts);
    EXPECT_TRUE(engine_or.ok());
    std::unique_ptr<Engine> engine = std::move(engine_or).value();
    EXPECT_TRUE(engine->InsertLinkFacts().ok());
    EXPECT_TRUE(engine->Run().ok());

    size_t longest = 0;
    for (const Tuple& t : engine->TuplesAt(0, "bestPath")) {
      if (t.arg(2).AsList().size() > longest) {
        longest = t.arg(2).AsList().size();
        *suspect = t;
      }
    }
    auto q = ProvQueryBuilder(*engine)
                 .At(0)
                 .Of(*suspect)
                 .WithScope(QueryScope::kDistributed)
                 .Run();
    EXPECT_TRUE(q.ok());
    return q.value().dag.CanonicalBytes();
  }

  // Restarts an engine over `dir` WITHOUT inserting facts or running, and
  // re-issues the distributed query against the replayed archives.
  void ExpectRecoveredProof(const Topology& topo, const EngineOptions& opts,
                            const Tuple& suspect, const Bytes& want) {
    auto engine_or = Engine::Create(topo, BestPathNdlogProgram(), opts);
    ASSERT_TRUE(engine_or.ok());
    std::unique_ptr<Engine> engine = std::move(engine_or).value();

    size_t recovered = 0;
    for (NodeId n = 0; n < engine->num_nodes(); ++n) {
      recovered += engine->node(n).offline_store().size();
    }
    EXPECT_GT(recovered, 0u);  // the logs actually replayed

    auto q = ProvQueryBuilder(*engine)
                 .At(0)
                 .Of(suspect)
                 .WithScope(QueryScope::kDistributed)
                 .Run();
    ASSERT_TRUE(q.ok());
    EXPECT_GT(q.value().stats.offline_hits, 0u);  // served from archives
    EXPECT_EQ(q.value().dag.CanonicalBytes(), want);
  }
};

TEST_F(DurableEngineTest, ProofDagIsByteIdenticalAcrossRestart) {
  TempDir dir("engine_restart");
  EngineOptions opts = ArchiveOptions(dir.File("archives"));
  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(12, 2, rng);

  Tuple suspect;
  Bytes before = RunAndFingerprint(topo, opts, &suspect);
  ASSERT_FALSE(before.empty());
  // First engine destroyed here: the crash. Archives were flushed by Run.
  ExpectRecoveredProof(topo, opts, suspect, before);
}

TEST_F(DurableEngineTest, TornArchiveTailRecoversToIdenticalProof) {
  TempDir dir("engine_torn");
  const std::string archives = dir.File("archives");
  EngineOptions opts = ArchiveOptions(archives);
  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(12, 2, rng);

  Tuple suspect;
  Bytes before = RunAndFingerprint(topo, opts, &suspect);
  ASSERT_FALSE(before.empty());

  // Tear every node's log: a partial frame after the flushed prefix, as a
  // crash mid-append would leave. Recovery must truncate the garbage and
  // keep every intact record.
  size_t torn = 0;
  for (const auto& entry : fs::directory_iterator(archives)) {
    TearTail(entry.path().string(), Payload(0xAB, 7));
    ++torn;
  }
  ASSERT_EQ(torn, 12u);  // one log per node

  ExpectRecoveredProof(topo, opts, suspect, before);
}

}  // namespace
}  // namespace provnet
