// Adversary subsystem (src/adversary/): Byzantine fault injection, the
// receive-side verification pipeline, retraction authorization, and the
// attack-campaign driver with its detection/traceback scorer.
//
// The oracles:
//   * rejection  - every verification-defeatable attack (bad/missing
//     signature, unknown principal, replay, misdirection, unauthorized
//     retraction) leaves an audit event and no state change;
//   * detection  - attacks that pass verification (stolen keys,
//     equivocation) are localized to the correct principal by the audit
//     sweep's provenance machinery, and the response purges them;
//   * innocence  - an all-honest campaign leaves fixpoints identical to a
//     run without the adversary subsystem attached at all.
#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/adversary.h"
#include "adversary/audit.h"
#include "adversary/campaign.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "dynamics/churn.h"
#include "net/topology.h"

namespace provnet {
namespace {

Tuple Link3(NodeId a, NodeId b, int64_t c) {
  return Tuple("link", {Value::Address(a), Value::Address(b), Value::Int(c)});
}

EngineOptions AuthOptions() {
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;  // cheap enough for every test
  return opts;
}

EngineOptions AuthProvOptions() {
  EngineOptions opts = AuthOptions();
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kPrincipal;
  opts.record_online = true;  // traceback queries need records
  return opts;
}

std::unique_ptr<Engine> BestPathEngine(const Topology& topo,
                                       EngineOptions opts) {
  Result<std::unique_ptr<Engine>> engine =
      Engine::Create(topo, BestPathNdlogProgram(), opts);
  EXPECT_TRUE(engine.ok()) << engine.status();
  std::unique_ptr<Engine> e = std::move(engine).value();
  EXPECT_TRUE(e->InsertLinkFacts().ok());
  EXPECT_TRUE(e->Run().ok());
  return e;
}

void ExpectSamePredAt(Engine& got_engine, Engine& want_engine,
                      const std::string& pred,
                      const std::set<NodeId>& skip = {}) {
  ASSERT_EQ(got_engine.num_nodes(), want_engine.num_nodes());
  for (NodeId n = 0; n < got_engine.num_nodes(); ++n) {
    if (skip.count(n) != 0) continue;
    std::vector<Tuple> got = got_engine.TuplesAt(n, pred);
    std::vector<Tuple> want = want_engine.TuplesAt(n, pred);
    ASSERT_EQ(got.size(), want.size()) << pred << " size at node " << n;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << pred << " at node " << n;
    }
  }
}

Topology Ring(size_t n, int64_t cost = 1) {
  Topology topo;
  topo.num_nodes = n;
  for (NodeId i = 0; i < n; ++i) {
    topo.edges.push_back(TopoEdge{i, static_cast<NodeId>((i + 1) % n), cost});
  }
  return topo;
}

// Edges not asserted by `without`: the golden topology after revoking a
// compromised principal (its own link facts die; links *into* it survive).
Topology WithoutAssertionsOf(const Topology& topo, NodeId without) {
  Topology out;
  out.num_nodes = topo.num_nodes;
  for (const TopoEdge& e : topo.edges) {
    if (e.from == without) continue;
    out.edges.push_back(e);
  }
  return out;
}

// --- ReplayGuard ------------------------------------------------------------

TEST(ReplayGuardTest, AcceptsFreshRejectsDuplicatesAndStale) {
  ReplayGuard guard;
  EXPECT_TRUE(guard.Accept(5));
  EXPECT_FALSE(guard.Accept(5));  // duplicate: the replay case
  EXPECT_TRUE(guard.Accept(7));   // gaps are fine (one counter, many peers)
  EXPECT_TRUE(guard.Accept(6));   // late but inside the window
  EXPECT_FALSE(guard.Accept(6));
  EXPECT_TRUE(guard.Accept(1000));
  EXPECT_FALSE(guard.Accept(7));  // replay after window advance: archived
  EXPECT_FALSE(guard.Accept(6));  // so is its in-window-accepted neighbor
  // Older than the 64-wide bitmap but never accepted: a lost original
  // retransmitted late. Exact history accepts it once, then rejects the
  // true replay of the same bytes.
  EXPECT_TRUE(guard.Accept(900));
  EXPECT_FALSE(guard.Accept(900));
  EXPECT_TRUE(guard.Accept(990));   // within the bitmap, never seen
  EXPECT_FALSE(guard.Accept(990));
}

// --- Network send tap -------------------------------------------------------

TEST(NetworkTapTest, DropDelayAndMetering) {
  Network net(3, 0.01);
  size_t delivered = 0;
  double last_delivery = 0.0;
  net.SetHandler([&](NodeId, NodeId, const Bytes&) {
    ++delivered;
    last_delivery = net.now();
  });
  net.SetSendTap([](const NetMessage& msg) {
    Network::TapVerdict verdict;
    if (msg.from == 1) verdict.drop = true;
    if (msg.from == 2) verdict.extra_delay_s = 5.0;
    return verdict;
  });

  ASSERT_TRUE(net.Send(0, 1, Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(net.Send(1, 2, Bytes{4, 5, 6}).ok());  // dropped
  ASSERT_TRUE(net.Send(2, 0, Bytes{7}).ok());        // delayed
  net.Run();

  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(net.dropped_messages(), 1u);
  EXPECT_EQ(net.delayed_messages(), 1u);
  // Dropped bytes never touched the wire.
  EXPECT_EQ(net.total_bytes(), 4u);
  EXPECT_GE(last_delivery, 5.0);
}

// --- Verification pipeline rejections ---------------------------------------

TEST(AdversaryTest, ForgedBadSignatureRejected) {
  Topology topo = Ring(5);
  std::unique_ptr<Engine> engine = BestPathEngine(topo, AuthOptions());
  std::unique_ptr<Engine> golden = BestPathEngine(topo, AuthOptions());
  Adversary adversary(*engine, /*seed=*/7);

  // Node 3 forges a zero-cost link at node 1 but corrupts the proof.
  ASSERT_TRUE(adversary
                  .InjectForgedTuple(AttackKind::kForgeBadSig, 3, 1,
                                     Link3(1, 4, 0),
                                     engine->PrincipalOf(3))
                  .ok());
  ASSERT_TRUE(engine->Run().ok());

  EXPECT_EQ(engine->security_log().CountOf(SecurityEventKind::kBadSignature),
            1u);
  std::vector<Tuple> links = engine->TuplesAt(1, "link");
  EXPECT_EQ(std::count(links.begin(), links.end(), Link3(1, 4, 0)), 0);
  ExpectSamePredAt(*engine, *golden, "bestPath");
}

TEST(AdversaryTest, MissingSignatureRejected) {
  Topology topo = Ring(5);
  std::unique_ptr<Engine> engine = BestPathEngine(topo, AuthOptions());
  Adversary adversary(*engine, 7);

  ASSERT_TRUE(adversary
                  .InjectForgedTuple(AttackKind::kForgeNoSig, 3, 1,
                                     Link3(1, 4, 0),
                                     engine->PrincipalOf(3))
                  .ok());
  ASSERT_TRUE(engine->Run().ok());

  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kMissingSignature),
      1u);
  std::vector<Tuple> links = engine->TuplesAt(1, "link");
  EXPECT_EQ(std::count(links.begin(), links.end(), Link3(1, 4, 0)), 0);
}

TEST(AdversaryTest, UnknownPrincipalRejected) {
  Topology topo = Ring(5);
  std::unique_ptr<Engine> engine = BestPathEngine(topo, AuthOptions());
  Adversary adversary(*engine, 7);

  // An invented identity: the simulated PKI would happily derive "mallory"
  // keys, so deployment membership must be what rejects it.
  ASSERT_TRUE(adversary
                  .InjectForgedTuple(AttackKind::kForgeStolenKey, 3, 1,
                                     Link3(1, 4, 0), "mallory")
                  .ok());
  ASSERT_TRUE(engine->Run().ok());

  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kUnknownPrincipal),
      1u);
  std::vector<Tuple> links = engine->TuplesAt(1, "link");
  EXPECT_EQ(std::count(links.begin(), links.end(), Link3(1, 4, 0)), 0);
}

TEST(AdversaryTest, ReplayedMessageRejectedBySequenceWindow) {
  Topology topo = Ring(6);
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, BestPathNdlogProgram(), AuthOptions());
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<Engine> engine = std::move(created).value();
  Adversary adversary(*engine, 7);
  adversary.Compromise(2);  // on-path: captures traffic crossing node 2

  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());
  ASSERT_GT(adversary.captured_count(), 0u);
  std::unique_ptr<Engine> golden = BestPathEngine(topo, AuthOptions());

  // Replay to the original destination: the per-sender sequence window has
  // already consumed that sequence number.
  ASSERT_TRUE(adversary.InjectReplay(2).ok());
  ASSERT_TRUE(engine->Run().ok());
  EXPECT_EQ(engine->security_log().CountOf(SecurityEventKind::kReplay), 1u);

  // Replay diverted to a different node: the signed destination catches it
  // even though that receiver never saw the sequence number.
  ASSERT_TRUE(adversary.InjectReplay(2, NodeId{5}).ok());
  ASSERT_TRUE(engine->Run().ok());
  EXPECT_GE(engine->security_log().CountOf(SecurityEventKind::kMisdirected) +
                engine->security_log().CountOf(SecurityEventKind::kReplay),
            2u);

  ExpectSamePredAt(*engine, *golden, "bestPath");
  ExpectSamePredAt(*engine, *golden, "link");
}

TEST(AdversaryTest, FaultDuplicationDedupsSilentlyButTrueReplayStillAudits) {
  // Two kinds of "the same bytes twice" must be told apart: a benign
  // duplication fault re-delivers an honest frame (the transport dedups it
  // below the engine, no audit), while an adversarial replay re-sends
  // captured signed bytes under a fresh frame (the ReplayGuard fires).
  Topology topo = Ring(6);
  EngineOptions opts = AuthOptions();
  FaultPlan plan;
  plan.seed = 13;
  LinkFaultSpec dup;
  dup.duplication = 0.5;  // every other frame arrives twice
  plan.links.push_back(dup);
  opts.fault_plan = plan;
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, BestPathNdlogProgram(), opts);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<Engine> engine = std::move(created).value();
  Adversary adversary(*engine, /*seed=*/7);
  adversary.Compromise(2);  // on-path capture of traffic crossing node 2

  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());

  // Duplication bit, was masked, and raised zero replay audits.
  EXPECT_GT(engine->network().duplicates_deduped(), 0u);
  EXPECT_EQ(engine->security_log().CountOf(SecurityEventKind::kReplay), 0u);
  std::unique_ptr<Engine> golden = BestPathEngine(topo, AuthOptions());
  ExpectSamePredAt(*engine, *golden, "bestPath");

  // The attacker replays the very bytes the transport would have deduped if
  // they were a benign duplicate — but they arrive as a fresh transmission,
  // so the adversary layer's sequence window still catches them.
  ASSERT_GT(adversary.captured_count(), 0u);
  ASSERT_TRUE(adversary.InjectReplay(2).ok());
  ASSERT_TRUE(engine->Run().ok());
  EXPECT_EQ(engine->security_log().CountOf(SecurityEventKind::kReplay), 1u);
  ExpectSamePredAt(*engine, *golden, "bestPath");
}

// --- Retraction authorization (ROADMAP follow-up from PR 1) -----------------

TEST(AdversaryTest, HostileRetractorRejected) {
  Topology topo = Ring(5);
  std::unique_ptr<Engine> engine = BestPathEngine(topo, AuthOptions());
  std::unique_ptr<Engine> golden = BestPathEngine(topo, AuthOptions());
  Adversary adversary(*engine, 7);

  // Node 3 demands node 1 drop its own link fact. Node 3 never asserted it
  // and holds no capability: rejected, audited, nothing changes.
  ASSERT_TRUE(adversary.InjectRogueRetract(3, 1, Link3(1, 2, 1)).ok());
  ASSERT_TRUE(engine->Run().ok());

  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kUnauthorizedRetract),
      1u);
  std::vector<Tuple> links = engine->TuplesAt(1, "link");
  EXPECT_EQ(std::count(links.begin(), links.end(), Link3(1, 2, 1)), 1);
  ExpectSamePredAt(*engine, *golden, "bestPath");
}

TEST(AdversaryTest, HonestDeletionCascadeStillAuthorized) {
  // The authorization check must not break honest DRed: an authenticated
  // link deletion still tears down remote consequences (the retract
  // messages come from the principals that asserted those heads).
  Topology topo = Ring(5);
  std::unique_ptr<Engine> engine = BestPathEngine(topo, AuthOptions());

  ASSERT_TRUE(engine->DeleteFact(1, Link3(1, 2, 1)).ok());
  ASSERT_TRUE(engine->Run().ok());

  Topology reduced = topo;
  reduced.edges.erase(
      std::remove_if(reduced.edges.begin(), reduced.edges.end(),
                     [](const TopoEdge& e) {
                       return e.from == 1 && e.to == 2;
                     }),
      reduced.edges.end());
  std::unique_ptr<Engine> golden = BestPathEngine(reduced, AuthOptions());
  ExpectSamePredAt(*engine, *golden, "bestPath");
  EXPECT_EQ(engine->security_log().CountOf(
                SecurityEventKind::kUnauthorizedRetract),
            0u);
}

TEST(AdversaryTest, OperatorCapabilityMayRetractForeignTuples) {
  Topology topo = Ring(5);
  EngineOptions opts = AuthOptions();
  opts.operators.push_back("n3");  // node 3 is the network operator
  std::unique_ptr<Engine> engine = BestPathEngine(topo, opts);
  Adversary adversary(*engine, 7);

  ASSERT_TRUE(adversary.InjectRogueRetract(3, 1, Link3(1, 2, 1)).ok());
  ASSERT_TRUE(engine->Run().ok());

  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kUnauthorizedRetract),
      0u);
  std::vector<Tuple> links = engine->TuplesAt(1, "link");
  EXPECT_EQ(std::count(links.begin(), links.end(), Link3(1, 2, 1)), 0);
}

TEST(AdversaryTest, RemoteCountHeadRetractionAuthorizedAndMaintained) {
  // An aggregate head computed *remotely*: the retract names the candidate
  // (aggregate column = contributing value), never the stored count, so
  // authorization must consult the group row — and any contributor may
  // retract its own contribution even after the group's asserted_by
  // rotated to a later one.
  const char* program = R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(indeg, infinity, infinity, keys(1)).
    i1 indeg(@D, count<S>) :- link(@S, D, C).
  )";
  Topology topo;
  topo.num_nodes = 4;
  topo.edges = {{0, 2, 1}, {1, 2, 1}};
  Result<std::unique_ptr<Engine>> created =
      Engine::Create(topo, program, AuthOptions());
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<Engine> engine = std::move(created).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());
  Tuple indeg2("indeg", {Value::Address(2), Value::Int(2)});
  ASSERT_EQ(engine->TuplesAt(2, "indeg"), std::vector<Tuple>{indeg2});

  // Node 0 honestly deletes its link: the cross-node retraction must pass
  // authorization and the count must drop.
  ASSERT_TRUE(engine->DeleteFact(0, Link3(0, 2, 1)).ok());
  ASSERT_TRUE(engine->Run().ok());
  EXPECT_EQ(engine->security_log().CountOf(
                SecurityEventKind::kUnauthorizedRetract),
            0u);
  Tuple indeg1("indeg", {Value::Address(2), Value::Int(1)});
  EXPECT_EQ(engine->TuplesAt(2, "indeg"), std::vector<Tuple>{indeg1});

  // A non-contributor demanding the group's removal is still rejected.
  Adversary adversary(*engine, 7);
  Tuple candidate("indeg", {Value::Address(2), Value::Address(1)});
  ASSERT_TRUE(adversary.InjectRogueRetract(3, 2, candidate).ok());
  ASSERT_TRUE(engine->Run().ok());
  EXPECT_EQ(engine->security_log().CountOf(
                SecurityEventKind::kUnauthorizedRetract),
            1u);
  EXPECT_EQ(engine->TuplesAt(2, "indeg"), std::vector<Tuple>{indeg1});
}

TEST(AdversaryTest, PoisonedKilledVariablesAreConfinedToTheTarget) {
  // An attacker authorized to retract one trivial tuple of its own must not
  // be able to smuggle arbitrary killed variables into the epoch's global
  // restriction set (which prunes *unrelated* tuples' alternatives). The
  // oracle: a poisoned scenario behaves exactly like the unpoisoned one.
  Topology topo;  // diamond: 0->3 via 1 and via 2
  topo.num_nodes = 5;
  topo.edges = {{0, 1, 1}, {1, 3, 1}, {0, 2, 1}, {2, 3, 1}};

  EngineOptions opts = AuthOptions();
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kTuple;

  auto run_scenario = [&](bool poisoned) -> std::pair<uint64_t, size_t> {
    Result<std::unique_ptr<Engine>> created =
        Engine::Create(topo, ReachableNdlogProgram(), opts);
    EXPECT_TRUE(created.ok()) << created.status();
    std::unique_ptr<Engine> engine = std::move(created).value();
    for (const TopoEdge& e : topo.edges) {
      EXPECT_TRUE(engine
                      ->InsertFact(e.from,
                                   Tuple("link", {Value::Address(e.from),
                                                  Value::Address(e.to)}))
                      .ok());
    }
    EXPECT_TRUE(engine->Run().ok());

    Adversary adversary(*engine, 7);
    // The attacker (node 4) plants an inert tuple of its own at node 0...
    Tuple junk("link", {Value::Address(4), Value::Address(0)});
    EXPECT_TRUE(adversary
                    .InjectForgedTuple(AttackKind::kForgeStolenKey, 4, 0,
                                       junk, engine->PrincipalOf(4))
                    .ok());
    EXPECT_TRUE(engine->Run().ok());
    // ...then retracts it, poisoned with the variable of an honest base
    // tuple (link(0,2) — the surviving alternative's support).
    std::vector<ProvVar> killed;
    if (poisoned) {
      killed.push_back(engine->registry().Intern(
          Tuple("link", {Value::Address(0), Value::Address(2)}).ToString()));
    }
    EXPECT_TRUE(adversary.InjectRogueRetract(4, 0, junk, killed).ok());
    // Same epoch: an honest deletion whose restriction consults the
    // epoch's killed set. reachable(0,3) must survive via the (0,2)
    // alternative without re-derivation.
    EXPECT_TRUE(engine->DeleteFact(0, Tuple("link", {Value::Address(0),
                                                     Value::Address(1)}))
                    .ok());
    Result<RunStats> stats = engine->Run();
    EXPECT_TRUE(stats.ok());
    Tuple reach03("reachable", {Value::Address(0), Value::Address(3)});
    std::vector<Tuple> at0 = engine->TuplesAt(0, "reachable");
    EXPECT_NE(std::find(at0.begin(), at0.end(), reach03), at0.end());
    return {stats.value().rederivations, at0.size()};
  };

  auto clean = run_scenario(false);
  auto poisoned = run_scenario(true);
  EXPECT_EQ(poisoned.first, clean.first)
      << "poisoned killed variables leaked into the restriction set";
  EXPECT_EQ(poisoned.second, clean.second);
}

// --- Equivocation audit -----------------------------------------------------

TEST(AdversaryTest, EquivocationAuditFlagsConflictingClaims) {
  Topology topo = Ring(6);
  std::unique_ptr<Engine> engine = BestPathEngine(topo, AuthOptions());
  Adversary adversary(*engine, 7);

  // Node 2 tells node 0 its link to 4 costs 1, and node 5 that it costs 99.
  ASSERT_TRUE(adversary
                  .InjectEquivocation(2, 0, Link3(2, 4, 1), 5,
                                      Link3(2, 4, 99))
                  .ok());
  ASSERT_TRUE(engine->Run().ok());

  std::vector<EquivocationFinding> findings =
      EquivocationAudit(*engine, {"link"}, /*skip_nodes=*/{2}).value();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].principal, engine->PrincipalOf(2));
  EXPECT_NE(findings[0].claim_a, findings[0].claim_b);
}

// --- Campaign: detection, localization, purge -------------------------------

TEST(CampaignTest, StolenKeyForgeryLocalizedAndPurged) {
  Rng rng(11);
  Topology topo = Topology::RingPlusRandom(10, 3, rng);
  std::unique_ptr<Engine> engine = BestPathEngine(topo, AuthProvOptions());
  Adversary adversary(*engine, 7);
  const NodeId mallory = 4;

  // The forged link (6 -> nowhere-cheap) is signed with mallory's real key:
  // verification passes, the victim's rules fire on it, and the forgery
  // spreads into derived state. Only the audit sweep can catch it.
  NodeId victim = 6;
  NodeId fake_dst = 0;
  for (NodeId cand = 0; cand < topo.num_nodes; ++cand) {
    bool neighbor = cand == victim;
    for (const TopoEdge& e : topo.edges) {
      if (e.from == victim && e.to == cand) neighbor = true;
    }
    if (!neighbor) fake_dst = cand;
  }

  AttackScript script;
  AttackAction forge;
  forge.kind = AttackKind::kForgeStolenKey;
  forge.attacker = mallory;
  forge.victim = victim;
  forge.tuple = Link3(victim, fake_dst, 0);
  script.AddAttack(1.0, forge);
  script.AddAuditSweeps(2.0, 1.0, 4.0);
  script.SortByTime();

  AttackCampaignDriver driver(*engine, adversary, CampaignOptions{});
  Result<CampaignReport> report = driver.Replay(script);
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_EQ(report.value().injected, 1u);
  ASSERT_EQ(report.value().detected, 1u);
  const AttackOutcome& outcome = report.value().outcomes[0];
  EXPECT_EQ(outcome.method, "audit:traceback");
  EXPECT_TRUE(outcome.localized_correct);
  EXPECT_EQ(outcome.localized.count(engine->PrincipalOf(mallory)), 1u);
  EXPECT_GT(outcome.latency(), 0.0);
  EXPECT_EQ(report.value().forged_in_fixpoint, 0u);

  // Post-response fixpoint: exactly a deployment where mallory asserted
  // nothing (honest nodes compared; mallory's own state is untrusted).
  std::unique_ptr<Engine> golden =
      BestPathEngine(WithoutAssertionsOf(topo, mallory), AuthProvOptions());
  ExpectSamePredAt(*engine, *golden, "bestPath", /*skip=*/{mallory});
}

TEST(CampaignTest, AllHonestCampaignIsByteIdenticalToPlainChurn) {
  Rng rng(5);
  Topology topo = Topology::RingPlusRandom(12, 3, rng);
  Rng script_rng(99);
  ChurnScript churn = ChurnScript::RandomLinkFlaps(topo, /*flaps=*/4,
                                                  /*start=*/1.0,
                                                  /*spacing=*/1.0,
                                                  script_rng);

  // Campaign engine: adversary attached, nobody compromised, full audit
  // cadence. Control engine: no adversary subsystem at all.
  std::unique_ptr<Engine> campaign_engine =
      BestPathEngine(topo, AuthProvOptions());
  std::unique_ptr<Engine> control_engine =
      BestPathEngine(topo, AuthProvOptions());

  Adversary adversary(*campaign_engine, 7);
  AttackScript script;
  script.AddChurn(churn);
  script.AddAuditSweeps(1.2, 0.7, 5.0);
  script.SortByTime();
  AttackCampaignDriver driver(*campaign_engine, adversary,
                              CampaignOptions{});
  Result<CampaignReport> report = driver.Replay(script);
  ASSERT_TRUE(report.ok()) << report.status();

  ChurnDriver plain(*control_engine, 3);
  ASSERT_TRUE(plain.Replay(churn).ok());

  EXPECT_EQ(report.value().injected, 0u);
  EXPECT_EQ(report.value().forged_in_fixpoint, 0u);
  EXPECT_TRUE(report.value().flagged.empty());
  EXPECT_EQ(campaign_engine->security_log().size(), 0u);
  ExpectSamePredAt(*campaign_engine, *control_engine, "link");
  ExpectSamePredAt(*campaign_engine, *control_engine, "bestPath");
}

TEST(CampaignTest, FullCampaignOverChurningNetworkAcceptance) {
  // The acceptance bar: >= 4 attack classes over a >= 50-node churning
  // network; zero forged tuples in any honest fixpoint; every injected
  // violation rejected at verification or localized by the audit.
  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(50, 3, rng);
  std::unique_ptr<Engine> engine = BestPathEngine(topo, AuthProvOptions());
  Adversary adversary(*engine, 13);
  adversary.Compromise(7);
  adversary.Compromise(23);

  Rng churn_rng(101);
  ChurnScript churn = ChurnScript::RandomLinkFlaps(topo, /*flaps=*/4,
                                                  /*start=*/1.0,
                                                  /*spacing=*/1.0,
                                                  churn_rng);
  Rng attack_rng(77);
  AttackScript script = AttackScript::RandomAttacks(
      topo, {7, 23}, /*per_class=*/1, /*start=*/1.13, /*spacing=*/0.41,
      attack_rng);
  script.AddChurn(churn);
  script.AddAuditSweeps(1.5, 0.5, 6.0);
  script.SortByTime();

  AttackCampaignDriver driver(*engine, adversary, CampaignOptions{});
  Result<CampaignReport> report = driver.Replay(script);
  ASSERT_TRUE(report.ok()) << report.status();
  const CampaignReport& r = report.value();

  std::set<AttackKind> classes;
  for (const AttackOutcome& o : r.outcomes) classes.insert(o.injection.kind);
  EXPECT_GE(classes.size(), 4u) << "campaign must span >= 4 attack classes";
  EXPECT_GE(r.injected, 5u);
  EXPECT_EQ(r.detected, r.injected) << r.Summary();
  EXPECT_EQ(r.forged_in_fixpoint, 0u) << r.Summary();
  EXPECT_GT(r.rejected_at_verify, 0u);
  EXPECT_GT(r.localized_correct, 0u);
  for (const AttackOutcome& o : r.outcomes) {
    EXPECT_TRUE(o.detected) << AttackKindName(o.injection.kind)
                            << " went undetected";
  }
}

}  // namespace
}  // namespace provnet
