#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "provenance/condense.h"
#include "provenance/derivation.h"
#include "provenance/prov_expr.h"
#include "provenance/semiring.h"
#include "provenance/store.h"

namespace provnet {
namespace {

// --- ProvExpr ----------------------------------------------------------------

TEST(ProvExprTest, ZeroAndOneIdentities) {
  ProvExpr a = ProvExpr::Var(1);
  EXPECT_TRUE(ProvExpr::Plus(ProvExpr::Zero(), a).Equals(a));
  EXPECT_TRUE(ProvExpr::Plus(a, ProvExpr::Zero()).Equals(a));
  EXPECT_TRUE(ProvExpr::Times(ProvExpr::One(), a).Equals(a));
  EXPECT_TRUE(ProvExpr::Times(a, ProvExpr::One()).Equals(a));
  EXPECT_TRUE(ProvExpr::Times(ProvExpr::Zero(), a).IsZero());
  EXPECT_TRUE(ProvExpr::Times(a, ProvExpr::Zero()).IsZero());
}

TEST(ProvExprTest, PhysicalIdempotence) {
  ProvExpr a = ProvExpr::Var(3);
  EXPECT_TRUE(ProvExpr::Plus(a, a).Equals(a));  // same node, no growth
}

TEST(ProvExprTest, StructureAccessors) {
  ProvExpr e = ProvExpr::Plus(ProvExpr::Var(0),
                              ProvExpr::Times(ProvExpr::Var(0),
                                              ProvExpr::Var(1)));
  EXPECT_EQ(e.kind(), ProvExprKind::kPlus);
  EXPECT_EQ(e.left().var(), 0u);
  EXPECT_EQ(e.right().kind(), ProvExprKind::kTimes);
  EXPECT_EQ(e.Variables(), (std::vector<ProvVar>{0, 1}));
}

TEST(ProvExprTest, ToStringPrecedence) {
  ProvExpr e = ProvExpr::Times(
      ProvExpr::Plus(ProvExpr::Var(0), ProvExpr::Var(1)), ProvExpr::Var(2));
  EXPECT_EQ(e.ToString(), "(v0 + v1)*v2");
  ProvExpr f = ProvExpr::Plus(
      ProvExpr::Var(0), ProvExpr::Times(ProvExpr::Var(0), ProvExpr::Var(1)));
  EXPECT_EQ(f.ToString(), "v0 + v0*v1");
}

TEST(ProvExprTest, SerializationRoundTrip) {
  ProvExpr e = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Var(5), ProvExpr::Var(700000)),
      ProvExpr::One());
  ByteWriter w;
  e.Serialize(w);
  EXPECT_EQ(w.size(), e.WireSize());
  ByteReader r(w.bytes());
  Result<ProvExpr> back = ProvExpr::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().Equals(e));
  EXPECT_TRUE(r.AtEnd());
}

TEST(ProvExprTest, DeserializeRejectsGarbage) {
  Bytes bad = {0x09};
  ByteReader r(bad);
  EXPECT_FALSE(ProvExpr::Deserialize(r).ok());
  Bytes truncated = {static_cast<uint8_t>(ProvExprKind::kPlus)};
  ByteReader r2(truncated);
  EXPECT_FALSE(ProvExpr::Deserialize(r2).ok());
}

TEST(ProvExprTest, NodeCountSharesDags) {
  ProvExpr x = ProvExpr::Var(0);
  ProvExpr shared = ProvExpr::Times(x, ProvExpr::Var(1));
  // Plus of the identical node collapses by idempotence.
  EXPECT_EQ(ProvExpr::Plus(shared, shared).NodeCount(), 3u);
  // A genuine union counts shared subterms once.
  ProvExpr e = ProvExpr::Plus(shared,
                              ProvExpr::Times(shared, ProvExpr::Var(2)));
  EXPECT_EQ(e.NodeCount(), 6u);  // plus, outer-times, times, v0, v1, v2
}

TEST(ProvVarRegistryTest, InternsDeterministically) {
  ProvVarRegistry reg;
  EXPECT_EQ(reg.Intern("a"), 0u);
  EXPECT_EQ(reg.Intern("b"), 1u);
  EXPECT_EQ(reg.Intern("a"), 0u);
  EXPECT_EQ(reg.NameOf(1), "b");
  EXPECT_EQ(reg.NameOf(99), "v99");
  EXPECT_EQ(reg.Find("b").value(), 1u);
  EXPECT_FALSE(reg.Find("c").has_value());
}

// --- Semirings (Section 4.5) --------------------------------------------------

class SemiringFixture : public ::testing::Test {
 protected:
  // The paper's example: <a + a*b>.
  SemiringFixture()
      : expr_(ProvExpr::Plus(
            ProvExpr::Var(0),
            ProvExpr::Times(ProvExpr::Var(0), ProvExpr::Var(1)))) {}
  ProvExpr expr_;
};

TEST_F(SemiringFixture, BooleanDerivability) {
  EXPECT_TRUE(DerivableFrom(expr_, {{0, true}}));             // a suffices
  EXPECT_TRUE(DerivableFrom(expr_, {{0, true}, {1, true}}));
  EXPECT_FALSE(DerivableFrom(expr_, {{1, true}}));            // b alone: no
  EXPECT_FALSE(DerivableFrom(expr_, {}));
}

TEST_F(SemiringFixture, TrustLevelPaperExample) {
  // level(a)=2, level(b)=1 -> max(2, min(2,1)) = 2.
  EXPECT_EQ(TrustLevelOf(expr_, {{0, 2}, {1, 1}}, 0), 2);
  // Weakest-link: if a is level 1, both derivations bottom out at 1.
  EXPECT_EQ(TrustLevelOf(expr_, {{0, 1}, {1, 5}}, 0), 1);
  // Missing principals use the default.
  EXPECT_EQ(TrustLevelOf(expr_, {}, 7), 7);
}

TEST_F(SemiringFixture, DerivationCounting) {
  EXPECT_EQ(DerivationCount(expr_), 2u);  // a, and a*b
  ProvExpr three = ProvExpr::Plus(expr_, ProvExpr::Var(2));
  EXPECT_EQ(DerivationCount(three), 3u);
  EXPECT_EQ(DerivationCount(ProvExpr::Zero()), 0u);
  EXPECT_EQ(DerivationCount(ProvExpr::One()), 1u);
}

TEST(SemiringTest, CountingMultipliesJoins) {
  // (a + b) * (c + d): four distinct derivations.
  ProvExpr e = ProvExpr::Times(
      ProvExpr::Plus(ProvExpr::Var(0), ProvExpr::Var(1)),
      ProvExpr::Plus(ProvExpr::Var(2), ProvExpr::Var(3)));
  EXPECT_EQ(DerivationCount(e), 4u);
}

// --- Condensation (Section 4.4) ------------------------------------------------

TEST(CondenseTest, PaperAbsorption) {
  ProvExpr e = ProvExpr::Plus(
      ProvExpr::Var(0),
      ProvExpr::Times(ProvExpr::Var(0), ProvExpr::Var(1)));
  CondensedProv c = Condense(e);
  ASSERT_EQ(c.cubes.size(), 1u);
  EXPECT_EQ(c.cubes[0], (std::vector<ProvVar>{0}));
  EXPECT_EQ(c.ToString(), "<v0>");
}

TEST(CondenseTest, KeepsIndependentWitnesses) {
  // a*b + c*d: both witness sets are minimal.
  ProvExpr e = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Var(0), ProvExpr::Var(1)),
      ProvExpr::Times(ProvExpr::Var(2), ProvExpr::Var(3)));
  CondensedProv c = Condense(e);
  EXPECT_EQ(c.cubes.size(), 2u);
  EXPECT_EQ(c.VoteCount(), 2u);
  EXPECT_EQ(c.MinWitnessSize(), 2u);
}

TEST(CondenseTest, ZeroAndOne) {
  EXPECT_TRUE(Condense(ProvExpr::Zero()).IsZero());
  EXPECT_TRUE(Condense(ProvExpr::One()).IsOne());
}

TEST(CondenseTest, RoundTripThroughExpr) {
  ProvExpr e = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Var(1), ProvExpr::Var(2)), ProvExpr::Var(0));
  CondensedProv c = Condense(e);
  // Condensing the rebuilt polynomial is a fixpoint.
  CondensedProv c2 = Condense(c.ToExpr());
  EXPECT_EQ(c, c2);
}

TEST(CondenseTest, SerializationRoundTrip) {
  CondensedProv c;
  c.cubes = {{0}, {1, 5}, {2, 3, 900000}};
  ByteWriter w;
  c.Serialize(w);
  EXPECT_EQ(w.size(), c.WireSize());
  ByteReader r(w.bytes());
  Result<CondensedProv> back = CondensedProv::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), c);
}

TEST(CondenseTest, SatisfiedBy) {
  CondensedProv c;
  c.cubes = {{0, 1}, {2}};
  EXPECT_TRUE(c.SatisfiedBy({0, 1}));
  EXPECT_TRUE(c.SatisfiedBy({2}));
  EXPECT_TRUE(c.SatisfiedBy({0, 2}));
  EXPECT_FALSE(c.SatisfiedBy({0}));
  EXPECT_FALSE(c.SatisfiedBy({}));
}

TEST(CondenseTest, EquivalentExpressionsCondenseIdentically) {
  // Distributivity: a*(b+c) vs a*b + a*c.
  ProvExpr lhs = ProvExpr::Times(
      ProvExpr::Var(0), ProvExpr::Plus(ProvExpr::Var(1), ProvExpr::Var(2)));
  ProvExpr rhs = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Var(0), ProvExpr::Var(1)),
      ProvExpr::Times(ProvExpr::Var(0), ProvExpr::Var(2)));
  EXPECT_EQ(Condense(lhs), Condense(rhs));
}

// Property sweep: condensation preserves boolean semantics.
class CondensePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(CondensePropertySweep, PreservesBooleanSemantics) {
  uint64_t state = 0x853c49e6748fea9bULL * (GetParam() + 1);
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  constexpr uint32_t kVars = 8;
  // Random expression tree.
  std::function<ProvExpr(int)> gen = [&](int depth) -> ProvExpr {
    if (depth >= 4 || next() % 3 == 0) {
      return ProvExpr::Var(static_cast<ProvVar>(next() % kVars));
    }
    ProvExpr l = gen(depth + 1);
    ProvExpr r = gen(depth + 1);
    return next() % 2 == 0 ? ProvExpr::Plus(l, r) : ProvExpr::Times(l, r);
  };
  ProvExpr e = gen(0);
  ProvExpr condensed = Condense(e).ToExpr();
  // Exhaustively compare over all assignments.
  for (uint32_t mask = 0; mask < (1u << kVars); ++mask) {
    std::unordered_map<ProvVar, bool> env;
    for (uint32_t v = 0; v < kVars; ++v) env[v] = (mask >> v) & 1;
    EXPECT_EQ(DerivableFrom(e, env), DerivableFrom(condensed, env))
        << "mask=" << mask << " expr=" << e.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CondensePropertySweep, ::testing::Range(0, 10));

// --- Derivation trees ----------------------------------------------------------

class DerivationFixture : public ::testing::Test {
 protected:
  DerivationFixture() {
    Tuple link_ab("link", {Value::Address(0), Value::Address(1)});
    Tuple link_bc("link", {Value::Address(1), Value::Address(2)});
    Tuple reach("reachable", {Value::Address(0), Value::Address(2)});
    base_ab_ = MakeBaseDerivation(link_ab, 0, "a", 1.0, 60.0);
    base_bc_ = MakeBaseDerivation(link_bc, 1, "b", 1.0, 60.0);
    derived_ = MakeRuleDerivation(reach, "r2", 1, "b", 2.0, 60.0,
                                  {base_ab_, base_bc_});
  }
  DerivationPtr base_ab_;
  DerivationPtr base_bc_;
  DerivationPtr derived_;
};

TEST_F(DerivationFixture, StructureAndAnnotations) {
  EXPECT_EQ(derived_->TreeSize(), 3u);
  EXPECT_EQ(derived_->TreeDepth(), 2u);
  EXPECT_EQ(derived_->location, 1u);
  EXPECT_EQ(derived_->asserted_by, "b");
  EXPECT_EQ(derived_->created_at, 2.0);
  std::vector<Tuple> leaves = derived_->Leaves();
  EXPECT_EQ(leaves.size(), 2u);
}

TEST_F(DerivationFixture, DigestIsStableAndSensitive) {
  Sha256Digest d1 = derived_->ContentDigest();
  Sha256Digest d2 = derived_->ContentDigest();  // memoized
  EXPECT_TRUE(DigestEqual(d1, d2));
  DerivationPtr other = MakeRuleDerivation(derived_->tuple, "r1", 1, "b", 2.0,
                                           60.0, {base_ab_, base_bc_});
  EXPECT_FALSE(DigestEqual(d1, other->ContentDigest()));
}

TEST_F(DerivationFixture, SerializationRoundTripPreservesDigest) {
  ByteWriter w;
  derived_->Serialize(w);
  ByteReader r(w.bytes());
  Result<DerivationPtr> back = DerivationNode::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(DigestEqual(back.value()->ContentDigest(),
                          derived_->ContentDigest()));
  EXPECT_EQ(back.value()->TreeSize(), 3u);
}

TEST_F(DerivationFixture, DagSerializationIsPolynomial) {
  // Build a deep DAG where each level references the previous twice; the
  // wire size must stay linear in distinct nodes, not 2^depth.
  DerivationPtr node = base_ab_;
  for (int i = 0; i < 24; ++i) {
    node = MakeRuleDerivation(derived_->tuple, "r", 0, "a", 0.0, -1.0,
                              {node, node});
  }
  EXPECT_EQ(node->TreeSize(), 25u);  // 1 base + 24 rule levels
  EXPECT_LT(node->WireSize(), 4096u);
}

TEST_F(DerivationFixture, MergeAlternativesBuildsUnion) {
  DerivationPtr alt = MakeRuleDerivation(derived_->tuple, "r1", 0, "a", 3.0,
                                         60.0, {base_ab_});
  DerivationPtr merged = MergeAlternatives(derived_, alt);
  EXPECT_EQ(merged->rule, kUnionRule);
  EXPECT_EQ(merged->children.size(), 2u);
  // Merging the same alternative again deduplicates.
  DerivationPtr again = MergeAlternatives(merged, alt);
  EXPECT_EQ(again->children.size(), 2u);
  // Merging with null passes through.
  EXPECT_EQ(MergeAlternatives(nullptr, derived_), derived_);
}

TEST_F(DerivationFixture, SignAndVerify) {
  KeyStore ks(3, 256);
  Authenticator auth(&ks);
  DerivationPtr signed_node =
      SignDerivation(derived_, auth, SaysLevel::kRsa).value();
  EXPECT_FALSE(signed_node->signature.empty());
  EXPECT_TRUE(VerifyDerivationTree(signed_node, auth, false).ok());

  // Tampering with the tuple invalidates the signature.
  auto tampered = std::make_shared<DerivationNode>(*signed_node);
  tampered->tuple =
      Tuple("reachable", {Value::Address(0), Value::Address(1)});
  EXPECT_FALSE(
      VerifyDerivationTree(DerivationPtr(tampered), auth, false).ok());
}

TEST_F(DerivationFixture, RequireSignaturesFlagsUnsigned) {
  KeyStore ks(3, 256);
  Authenticator auth(&ks);
  EXPECT_TRUE(VerifyDerivationTree(derived_, auth, false).ok());
  EXPECT_FALSE(VerifyDerivationTree(derived_, auth, true).ok());
}

// --- Stores ---------------------------------------------------------------------

ProvRecord MakeRecord(const Tuple& t, const std::string& rule, NodeId loc,
                      const Principal& who, double created,
                      double expires = -1.0) {
  ProvRecord rec;
  rec.tuple = t;
  rec.rule = rule;
  rec.location = loc;
  rec.asserted_by = who;
  rec.created_at = created;
  rec.expires_at = expires;
  return rec;
}

TEST(OnlineStoreTest, AddLookupRemove) {
  OnlineProvStore store;
  Tuple t("x", {Value::Int(1)});
  store.Add(MakeRecord(t, "r1", 0, "a", 1.0));
  store.Add(MakeRecord(t, "r2", 0, "a", 2.0));
  ASSERT_NE(store.Lookup(DigestOf(t)), nullptr);
  EXPECT_EQ(store.Lookup(DigestOf(t))->size(), 2u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Remove(DigestOf(t)), 2u);
  EXPECT_EQ(store.Lookup(DigestOf(t)), nullptr);
  EXPECT_EQ(store.size(), 0u);
}

TEST(OnlineStoreTest, ExpiresWithTuples) {
  OnlineProvStore store;
  Tuple t1("x", {Value::Int(1)});
  Tuple t2("x", {Value::Int(2)});
  store.Add(MakeRecord(t1, "r", 0, "a", 0.0, /*expires=*/5.0));
  store.Add(MakeRecord(t2, "r", 0, "a", 0.0, /*expires=*/50.0));
  EXPECT_EQ(store.ExpireBefore(10.0), 1u);
  EXPECT_EQ(store.Lookup(DigestOf(t1)), nullptr);
  EXPECT_NE(store.Lookup(DigestOf(t2)), nullptr);
}

TEST(OnlineStoreTest, DependentsOfTracksTransitiveTaint) {
  OnlineProvStore store;
  Tuple base("link", {Value::Int(1)});
  Tuple mid("path", {Value::Int(1)});
  Tuple top("best", {Value::Int(1)});
  ProvRecord rec_mid = MakeRecord(mid, "r", 0, "honest", 0.0);
  ProvChildRef ref;
  ref.node = 0;
  ref.digest = DigestOf(base);
  ref.asserted_by = "mallory";
  rec_mid.children.push_back(ref);
  store.Add(rec_mid);

  ProvRecord rec_top = MakeRecord(top, "r", 0, "honest", 0.0);
  ProvChildRef ref2;
  ref2.node = 0;
  ref2.digest = DigestOf(mid);
  ref2.asserted_by = "honest";
  rec_top.children.push_back(ref2);
  store.Add(rec_top);

  std::vector<TupleDigest> tainted = store.DependentsOf("mallory");
  EXPECT_EQ(tainted.size(), 2u);  // mid directly, top transitively
}

TEST(OfflineStoreTest, AgingRespectsPersistMarks) {
  OfflineProvStore store;
  Tuple t1("x", {Value::Int(1)});
  Tuple t2("x", {Value::Int(2)});
  store.Add(MakeRecord(t1, "r", 0, "a", 1.0));
  store.Add(MakeRecord(t2, "r", 0, "a", 2.0));
  EXPECT_EQ(store.MarkPersistent(DigestOf(t1)), 1u);
  EXPECT_EQ(store.EvictOlderThan(10.0), 1u);  // t2 aged out, t1 kept
  EXPECT_EQ(store.FindByDigest(DigestOf(t1)).size(), 1u);
  EXPECT_TRUE(store.FindByDigest(DigestOf(t2)).empty());
}

TEST(OfflineStoreTest, QueriesByPredicateAndWindow) {
  OfflineProvStore store;
  store.Add(MakeRecord(Tuple("a", {Value::Int(1)}), "r", 0, "p", 1.0));
  store.Add(MakeRecord(Tuple("b", {Value::Int(2)}), "r", 0, "p", 5.0));
  store.Add(MakeRecord(Tuple("a", {Value::Int(3)}), "r", 0, "p", 9.0));
  EXPECT_EQ(store.FindByPredicate("a").size(), 2u);
  EXPECT_EQ(store.FindInWindow(0.0, 6.0).size(), 2u);
  EXPECT_EQ(store.FindInWindow(4.0, 10.0).size(), 2u);
  EXPECT_GT(store.ApproxBytes(), 0u);
}

TEST(ProvRecordTest, SerializationRoundTrip) {
  ProvRecord rec = MakeRecord(Tuple("x", {Value::Int(1)}), "sp2", 3, "n3",
                              1.5, 99.0);
  rec.persist = true;
  ProvChildRef ref;
  ref.node = 2;
  ref.digest = 0xDEADBEEFCAFEF00DULL;
  ref.is_base = true;
  ref.base_tuple = Tuple("link", {Value::Int(9)});
  ref.asserted_by = "n2";
  rec.children.push_back(ref);

  ByteWriter w;
  rec.Serialize(w);
  ByteReader r(w.bytes());
  Result<ProvRecord> back = ProvRecord::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().tuple, rec.tuple);
  EXPECT_EQ(back.value().rule, "sp2");
  EXPECT_TRUE(back.value().persist);
  ASSERT_EQ(back.value().children.size(), 1u);
  EXPECT_EQ(back.value().children[0].digest, ref.digest);
  EXPECT_TRUE(back.value().children[0].is_base);
  EXPECT_EQ(back.value().children[0].base_tuple, ref.base_tuple);
}

}  // namespace
}  // namespace provnet
