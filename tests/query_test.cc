// ProvQuery subsystem (src/query/): the typed provenance-query API, its
// proof DAGs, semiring evaluations, limits, per-query accounting, and the
// authenticated wire path.
//
// The oracles:
//   * equivalence - the distributed pointer-walk reconstructs, byte for
//     byte (canonical form), the proof the local full-provenance tree
//     stores, on golden topologies;
//   * accounting  - query traffic is real metered traffic, visible in
//     QueryStats, the network meters, and the engine's cumulative
//     prov_queries / prov_query_bytes counters;
//   * hostility   - forged, replayed, misdirected, and unsolicited
//     kMsgProvResponse messages are rejected, counted, and audited; framed
//     annotation cubes are rejected by the receive-side framing check.

#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/adversary.h"
#include "adversary/campaign.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "query/provquery.h"

namespace provnet {
namespace {

Tuple Link2(NodeId a, NodeId b) {
  return Tuple("link", {Value::Address(a), Value::Address(b)});
}

Tuple Link3(NodeId a, NodeId b, int64_t c) {
  return Tuple("link", {Value::Address(a), Value::Address(b), Value::Int(c)});
}

Tuple Reach(NodeId a, NodeId b) {
  return Tuple("reachable", {Value::Address(a), Value::Address(b)});
}

std::unique_ptr<Engine> RunReach(const Topology& topo, EngineOptions opts) {
  auto engine =
      Engine::Create(topo, ReachableSendlogProgram(), std::move(opts)).value();
  for (const TopoEdge& e : topo.edges) {
    EXPECT_TRUE(engine->InsertFact(e.from, Link2(e.from, e.to)).ok());
  }
  EXPECT_TRUE(engine->Run().ok());
  return engine;
}

EngineOptions PointerAuthOptions() {
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kPointers;
  return opts;
}

Topology Diamond() {
  Topology topo;
  topo.num_nodes = 4;
  topo.edges = {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}};
  return topo;
}

// --- Golden equivalence: distributed walk == local full tree ----------------

class GoldenEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GoldenEquivalence, DistributedDagByteIdenticalToLocalTree) {
  Topology topo =
      GetParam() == 0 ? Topology::FigureAbc() : Topology::Line(4);
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kFull;  // store trees *and* pointer records
  opts.record_online = true;
  auto engine = RunReach(topo, opts);

  for (NodeId n = 0; n < engine->num_nodes(); ++n) {
    for (const Tuple& t : engine->TuplesAt(n, "reachable")) {
      QueryResult local = ProvQueryBuilder(*engine)
                              .At(n)
                              .Of(t)
                              .WithScope(QueryScope::kLocal)
                              .Run()
                              .value();
      QueryResult distributed = ProvQueryBuilder(*engine)
                                    .At(n)
                                    .Of(t)
                                    .WithScope(QueryScope::kDistributed)
                                    .Run()
                                    .value();
      EXPECT_EQ(local.dag.CanonicalBytes(), distributed.dag.CanonicalBytes())
          << "node " << n << " tuple " << t.ToString();
      EXPECT_EQ(local.dag.Leaves(), distributed.dag.Leaves());
      EXPECT_EQ(local.dag.OriginNodes(), distributed.dag.OriginNodes());
      // The folded polynomials agree too (same proof => same annotation).
      EXPECT_TRUE(local.annotation.Equals(distributed.annotation))
          << local.annotation.ToString() << " vs "
          << distributed.annotation.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, GoldenEquivalence, ::testing::Range(0, 2));

TEST(ProvQueryTest, AutoScopePrefersStoredTreeAndFallsBackToWire) {
  Topology topo = Topology::FigureAbc();
  EngineOptions full_opts;
  full_opts.prov_mode = ProvMode::kFull;
  full_opts.record_online = true;
  auto full_engine = RunReach(topo, full_opts);

  uint64_t bytes0 = full_engine->network().total_bytes();
  QueryResult via_tree =
      ProvQueryBuilder(*full_engine).At(0).Of(Reach(0, 2)).Run().value();
  EXPECT_EQ(via_tree.used, QueryScope::kLocal);
  EXPECT_EQ(full_engine->network().total_bytes(), bytes0)
      << "local query must not touch the network";

  EngineOptions ptr_opts;
  ptr_opts.prov_mode = ProvMode::kPointers;
  auto ptr_engine = RunReach(topo, ptr_opts);
  QueryResult via_wire =
      ProvQueryBuilder(*ptr_engine).At(0).Of(Reach(0, 2)).Run().value();
  EXPECT_EQ(via_wire.used, QueryScope::kDistributed);
  EXPECT_GT(via_wire.stats.messages, 0u);
  EXPECT_EQ(via_tree.dag.CanonicalBytes(), via_wire.dag.CanonicalBytes());
}

TEST(ProvQueryTest, UnknownTupleIsNotFound) {
  auto engine = RunReach(Topology::FigureAbc(), PointerAuthOptions());
  Result<QueryResult> result = ProvQueryBuilder(*engine)
                                   .At(0)
                                   .Of(Tuple("reachable", {Value::Int(99)}))
                                   .WithScope(QueryScope::kDistributed)
                                   .Run();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// --- Accounting -------------------------------------------------------------

TEST(ProvQueryTest, CountersChargeQueriesAndBytes) {
  auto engine = RunReach(Topology::FigureAbc(), PointerAuthOptions());
  EXPECT_EQ(engine->cumulative_stats().prov_queries, 0u);
  EXPECT_EQ(engine->cumulative_stats().prov_query_bytes, 0u);

  uint64_t bytes0 = engine->network().total_bytes();
  QueryResult result = ProvQueryBuilder(*engine)
                           .At(0)
                           .Of(Reach(0, 2))
                           .WithScope(QueryScope::kDistributed)
                           .Run()
                           .value();
  EXPECT_GT(result.stats.requests, 0u);
  EXPECT_EQ(result.stats.responses, result.stats.requests);
  EXPECT_GT(result.stats.bytes, 0u);
  EXPECT_EQ(result.stats.bytes, engine->network().total_bytes() - bytes0);

  const RunStats& totals = engine->cumulative_stats();
  EXPECT_EQ(totals.prov_queries, 1u);
  // Request and response traffic both ride the signed query envelope.
  EXPECT_EQ(totals.prov_query_bytes, result.stats.bytes);
  EXPECT_EQ(totals.prov_responses_rejected, 0u);

  // The counters are part of the printable stats contract.
  std::string printed = totals.ToString();
  EXPECT_NE(printed.find("prov_queries=1"), std::string::npos) << printed;
  EXPECT_NE(printed.find("prov_query_bytes="), std::string::npos);
  EXPECT_NE(printed.find("prov_responses_rejected=0"), std::string::npos);
  EXPECT_NE(printed.find("prov_frames_rejected=0"), std::string::npos);
}

TEST(ProvQueryTest, OfflineArchiveServesAsFallback) {
  // Archive-only recording: the online store is never populated, so every
  // hop of the walk must fall back to the offline archive (forensics over
  // state the online stores no longer cover).
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  opts.record_offline = true;
  auto engine = RunReach(Topology::FigureAbc(), opts);
  ASSERT_EQ(engine->node(0).online_store().size(), 0u);
  QueryResult result = ProvQueryBuilder(*engine)
                           .At(0)
                           .Of(Reach(0, 2))
                           .WithScope(QueryScope::kDistributed)
                           .Run()
                           .value();
  EXPECT_GT(result.stats.offline_hits, 0u);
  EXPECT_FALSE(result.dag.Leaves().empty());
}

// --- Limits -----------------------------------------------------------------

TEST(ProvQueryTest, DepthLimitTruncatesAndSavesTraffic) {
  Topology line = Topology::Line(6);
  auto engine = RunReach(line, PointerAuthOptions());
  Tuple far = Reach(0, 5);

  QueryResult unbounded = ProvQueryBuilder(*engine)
                              .At(0)
                              .Of(far)
                              .WithScope(QueryScope::kDistributed)
                              .Run()
                              .value();
  QueryResult shallow = ProvQueryBuilder(*engine)
                            .At(0)
                            .Of(far)
                            .WithScope(QueryScope::kDistributed)
                            .MaxDepth(2)
                            .Run()
                            .value();
  EXPECT_GT(shallow.stats.truncated, 0u);
  EXPECT_LT(shallow.stats.messages, unbounded.stats.messages);
  EXPECT_LE(shallow.stats.depth, 2u);
  // The cut branches surface as missing leaves, not silent omissions.
  bool has_missing = false;
  for (const ProofNode& n : shallow.dag.nodes) {
    if (n.rule == kMissingRule) has_missing = true;
  }
  EXPECT_TRUE(has_missing);
  EXPECT_EQ(unbounded.stats.truncated, 0u);
}

TEST(ProvQueryTest, LimitsApplyToStoredTreesToo) {
  // The kLocal shortcut over a stored full-provenance tree honors the same
  // limits contract as the distributed walk: cut refs become missing
  // leaves and count into truncated.
  Topology line = Topology::Line(6);
  EngineOptions opts;
  opts.prov_mode = ProvMode::kFull;
  auto engine = RunReach(line, opts);

  QueryResult full = ProvQueryBuilder(*engine)
                         .At(0)
                         .Of(Reach(0, 5))
                         .WithScope(QueryScope::kLocal)
                         .Run()
                         .value();
  EXPECT_EQ(full.stats.truncated, 0u);

  QueryResult shallow = ProvQueryBuilder(*engine)
                            .At(0)
                            .Of(Reach(0, 5))
                            .WithScope(QueryScope::kLocal)
                            .MaxDepth(2)
                            .Run()
                            .value();
  EXPECT_GT(shallow.stats.truncated, 0u);
  EXPECT_LE(shallow.stats.depth, 2u);
  EXPECT_LT(shallow.dag.nodes.size(), full.dag.nodes.size());
  bool has_missing = false;
  for (const ProofNode& n : shallow.dag.nodes) {
    if (n.rule == kMissingRule) has_missing = true;
  }
  EXPECT_TRUE(has_missing);

  QueryResult bounded = ProvQueryBuilder(*engine)
                            .At(0)
                            .Of(Reach(0, 5))
                            .WithScope(QueryScope::kLocal)
                            .MaxRecords(2)
                            .Run()
                            .value();
  EXPECT_LE(bounded.stats.records, 2u);
  EXPECT_GT(bounded.stats.truncated, 0u);
}

TEST(ProvQueryTest, RecordBudgetBoundsTheWalk) {
  auto engine = RunReach(Topology::Line(6), PointerAuthOptions());
  QueryResult result = ProvQueryBuilder(*engine)
                           .At(0)
                           .Of(Reach(0, 5))
                           .WithScope(QueryScope::kDistributed)
                           .MaxRecords(2)
                           .Run()
                           .value();
  EXPECT_LE(result.stats.records, 2u);
  EXPECT_GT(result.stats.truncated, 0u);
}

// --- Semiring evaluations over the reconstructed proof ----------------------

TEST(ProvQueryTest, SemiringFoldsOverDistributedProof) {
  auto engine = RunReach(Diamond(), PointerAuthOptions());
  QueryResult result = ProvQueryBuilder(*engine)
                           .At(0)
                           .Of(Reach(0, 3))
                           .WithScope(QueryScope::kDistributed)
                           .WithGrain(ProvGrain::kPrincipal)
                           .Run()
                           .value();

  // Two vertex-disjoint middle hops => two derivations.
  EXPECT_EQ(result.DerivationCount(), 2u);

  ProvVarRegistry& reg = engine->registry();
  ProvVar a = reg.Intern("n0"), b = reg.Intern("n1"), c = reg.Intern("n2");
  // Derivable trusting {a, b} (the 0->1->3 path), not from {b, c} alone.
  EXPECT_TRUE(result.DerivableFrom({{a, true}, {b, true}}));
  EXPECT_FALSE(result.DerivableFrom({{b, true}, {c, true}}));

  // Trust level: max over paths of min over principals.
  EXPECT_EQ(result.TrustLevel({{a, 5}, {b, 1}, {c, 3}}, 4), 3);

  // Condensed cube: <a*b*d + a*c*d> — two minimal support sets.
  EXPECT_EQ(result.Condensed().VoteCount(), 2u);

  // Tuple grain folds over base link facts instead of principals.
  QueryResult by_tuple = ProvQueryBuilder(*engine)
                             .At(0)
                             .Of(Reach(0, 3))
                             .WithScope(QueryScope::kDistributed)
                             .WithGrain(ProvGrain::kTuple)
                             .Run()
                             .value();
  EXPECT_EQ(by_tuple.annotation.Variables().size(), 4u);  // four links used
}

// --- Hostile responses ------------------------------------------------------

TEST(ProvQueryHostileTest, ForgedResponsesRejectedAndAudited) {
  Topology topo = Diamond();
  auto engine = RunReach(topo, PointerAuthOptions());
  Adversary adversary(*engine, /*seed=*/7);
  const NodeId mallory = 3;

  // Bad signature on a response claiming mallory's records.
  ASSERT_TRUE(adversary
                  .InjectForgedProvResponse(AttackKind::kForgeBadSig, mallory,
                                            0, /*query_id=*/12345,
                                            Link2(0, 3),
                                            engine->PrincipalOf(mallory))
                  .ok());
  // No signature at all.
  ASSERT_TRUE(adversary
                  .InjectForgedProvResponse(AttackKind::kForgeNoSig, mallory,
                                            0, /*query_id=*/12346,
                                            Link2(0, 3),
                                            engine->PrincipalOf(mallory))
                  .ok());
  // Stolen key: the signature verifies, so only the outstanding-query match
  // can catch it — there is no query 99999 outstanding.
  ASSERT_TRUE(adversary
                  .InjectForgedProvResponse(AttackKind::kForgeStolenKey,
                                            mallory, 0, /*query_id=*/99999,
                                            Link2(0, 3),
                                            engine->PrincipalOf(mallory))
                  .ok());
  engine->network().Run();

  const SecurityLog& log = engine->security_log();
  EXPECT_EQ(log.CountOf(SecurityEventKind::kBadSignature), 1u);
  EXPECT_EQ(log.CountOf(SecurityEventKind::kMissingSignature), 1u);
  EXPECT_EQ(log.CountOf(SecurityEventKind::kBogusResponse), 1u);
  EXPECT_EQ(engine->cumulative_stats().prov_responses_rejected, 3u);

  // And none of it polluted the stores: an honest query still answers with
  // the true proof.
  QueryResult result = ProvQueryBuilder(*engine)
                           .At(0)
                           .Of(Reach(0, 3))
                           .WithScope(QueryScope::kDistributed)
                           .Run()
                           .value();
  EXPECT_EQ(result.DerivationCount(), 2u);
}

TEST(ProvQueryHostileTest, ReplayedAndMisdirectedResponsesRejected) {
  Topology topo = Diamond();
  auto engine = RunReach(topo, PointerAuthOptions());
  Adversary adversary(*engine, /*seed=*/7);
  adversary.Compromise(1);  // on-path: captures the query traffic it relays

  // An honest query whose responses cross (or originate at) node 1.
  ASSERT_TRUE(ProvQueryBuilder(*engine)
                  .At(0)
                  .Of(Reach(0, 3))
                  .WithScope(QueryScope::kDistributed)
                  .Run()
                  .ok());
  ASSERT_GT(adversary.captured_count(), 0u);
  size_t rejected0 = engine->cumulative_stats().prov_responses_rejected;

  // Replay a captured response to its original destination: the per-sender
  // sequence window has already consumed that sequence number.
  ASSERT_TRUE(adversary.InjectReplay(1, {}, kMsgProvResponse).ok());
  engine->network().Run();
  EXPECT_EQ(engine->security_log().CountOf(SecurityEventKind::kReplay), 1u);

  // Divert a captured response to a different node: the signed destination
  // catches it even though that receiver never saw the sequence number.
  ASSERT_TRUE(adversary.InjectReplay(1, NodeId{2}, kMsgProvResponse).ok());
  engine->network().Run();
  EXPECT_GE(engine->security_log().CountOf(SecurityEventKind::kMisdirected) +
                engine->security_log().CountOf(SecurityEventKind::kReplay),
            2u);
  EXPECT_EQ(engine->cumulative_stats().prov_responses_rejected,
            rejected0 + 2);
}

// --- Receive-side provenance framing check ----------------------------------

TEST(FramingTest, CubesOmittingTheSenderAreRejected) {
  Topology topo = Topology::FigureAbc();
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kPrincipal;
  opts.node_names = {"a", "b", "c"};
  auto engine = RunReach(topo, opts);
  Adversary adversary(*engine, 7);

  // b's key is stolen; the forged link ships cubes blaming only c. The
  // framing check rejects it before any rule fires.
  Tuple forged = Link2(2, 0);
  ASSERT_TRUE(adversary.InjectFramedTuple(1, 0, forged, "b", "c").ok());
  ASSERT_TRUE(engine->Run().ok());

  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kForeignProvenance),
      1u);
  EXPECT_EQ(engine->cumulative_stats().prov_frames_rejected, 1u);
  std::vector<Tuple> links = engine->TuplesAt(0, "link");
  EXPECT_EQ(std::count(links.begin(), links.end(), forged), 0);

  // The same forgery naming the speaking key passes the framing check (and
  // is then the audit sweep's problem, as before).
  ASSERT_TRUE(adversary
                  .InjectForgedTuple(AttackKind::kForgeStolenKey, 1, 0,
                                     Link2(2, 1), "b")
                  .ok());
  ASSERT_TRUE(engine->Run().ok());
  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kForeignProvenance),
      1u);
}

TEST(FramingTest, HonestCondensedTrafficPassesTheCheck) {
  // Every honest shipped cube contains the sender's own variable; the check
  // must be invisible to a clean run (including the aggregate-heavy
  // Best-Path workload).
  Rng rng(42);
  Topology topo = Topology::RingPlusRandom(12, 3, rng);
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kCondensed;
  auto engine =
      Engine::Create(topo, BestPathSendlogProgram(), opts).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());
  EXPECT_EQ(engine->cumulative_stats().prov_frames_rejected, 0u);
  EXPECT_EQ(engine->security_log().size(), 0u);
}

// --- Distributed equivocation audit -----------------------------------------

TEST(ClaimsExchangeTest, AuditChargesBandwidthAndStillFindsConflicts) {
  Topology topo;
  topo.num_nodes = 6;
  for (NodeId i = 0; i < 6; ++i) {
    topo.edges.push_back(TopoEdge{i, static_cast<NodeId>((i + 1) % 6), 1});
  }
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());
  Adversary adversary(*engine, 7);

  ASSERT_TRUE(adversary
                  .InjectEquivocation(2, 0, Link3(2, 4, 1), 5, Link3(2, 4, 99))
                  .ok());
  ASSERT_TRUE(engine->Run().ok());

  uint64_t bytes0 = engine->network().total_bytes();
  uint64_t queries0 = engine->cumulative_stats().prov_queries;
  std::vector<EquivocationFinding> findings =
      EquivocationAudit(*engine, {"link"}, /*skip_nodes=*/{2}).value();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].principal, engine->PrincipalOf(2));
  EXPECT_NE(findings[0].claim_a, findings[0].claim_b);
  // The digest exchange is real metered traffic now.
  EXPECT_GT(engine->network().total_bytes(), bytes0);
  EXPECT_GT(engine->cumulative_stats().prov_query_bytes, 0u);
  EXPECT_EQ(engine->cumulative_stats().prov_queries, queries0 + 1);
  EXPECT_EQ(engine->security_log().CountOf(SecurityEventKind::kReplay), 0u);
}

TEST(CompareExchangeTest, ComparisonWorkIsSpreadAndFindingsAreStable) {
  // Two equivocators, so the audit has several conflicting keys to spread
  // over the honest comparers, plus hundreds of clean link/path buckets.
  Topology topo;
  topo.num_nodes = 8;
  for (NodeId i = 0; i < 8; ++i) {
    topo.edges.push_back(TopoEdge{i, static_cast<NodeId>((i + 1) % 8), 1});
  }
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  auto engine = Engine::Create(topo, BestPathNdlogProgram(), opts).value();
  ASSERT_TRUE(engine->InsertLinkFacts().ok());
  ASSERT_TRUE(engine->Run().ok());
  Adversary adversary(*engine, 11);
  ASSERT_TRUE(adversary
                  .InjectEquivocation(2, 0, Link3(2, 5, 1), 4, Link3(2, 5, 77))
                  .ok());
  ASSERT_TRUE(adversary
                  .InjectEquivocation(3, 1, Link3(3, 6, 2), 5, Link3(3, 6, 88))
                  .ok());
  ASSERT_TRUE(engine->Run().ok());

  uint64_t messages0 = engine->network().total_messages();
  uint64_t query_bytes0 = engine->cumulative_stats().prov_query_bytes;
  std::vector<EquivocationFinding> findings =
      EquivocationAudit(*engine, {"link"}, /*skip_nodes=*/{2, 3}).value();
  ASSERT_EQ(findings.size(), 2u);
  std::set<Principal> flagged;
  for (const EquivocationFinding& f : findings) {
    flagged.insert(f.principal);
    EXPECT_NE(f.claim_a, f.claim_b);
  }
  EXPECT_EQ(flagged, (std::set<Principal>{engine->PrincipalOf(2),
                                          engine->PrincipalOf(3)}));
  // Both phases are metered: 5 responders answer the claims collection
  // (2 messages each), and the digest-comparison requests that hashed to
  // non-auditor comparers add their own signed round trips on top.
  uint64_t audit_messages = engine->network().total_messages() - messages0;
  EXPECT_GT(audit_messages, 10u);
  EXPECT_GT(engine->cumulative_stats().prov_query_bytes, query_bytes0);
  // Nothing went unanswered, and nothing tripped the replay/bogus checks.
  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kSilentResponder),
      0u);
  EXPECT_EQ(
      engine->security_log().CountOf(SecurityEventKind::kBogusResponse), 0u);

  // The key->comparer assignment is deterministic, so re-running the audit
  // over unchanged state reproduces the findings exactly.
  std::vector<EquivocationFinding> again =
      EquivocationAudit(*engine, {"link"}, /*skip_nodes=*/{2, 3}).value();
  ASSERT_EQ(again.size(), findings.size());
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(again[i].principal, findings[i].principal);
    EXPECT_EQ(again[i].node_a, findings[i].node_a);
    EXPECT_EQ(again[i].node_b, findings[i].node_b);
    EXPECT_EQ(again[i].claim_a, findings[i].claim_a);
    EXPECT_EQ(again[i].claim_b, findings[i].claim_b);
  }
}

}  // namespace
}  // namespace provnet
