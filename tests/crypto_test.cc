#include <gtest/gtest.h>

#include "crypto/authenticator.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "util/random.h"

namespace provnet {
namespace {

Bytes ToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

// --- SHA-256 (FIPS 180-4 test vectors) --------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "network provenance as distributed streams";
  Sha256 h;
  for (char c : msg) h.Update(std::string(1, c));
  EXPECT_EQ(DigestToHex(h.Finish()), DigestToHex(Sha256::Hash(msg)));
}

TEST(Sha256Test, ResetReuses) {
  Sha256 h;
  h.Update(std::string("garbage"));
  h.Reset();
  h.Update(std::string("abc"));
  EXPECT_EQ(DigestToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Padding boundary cases: lengths 55, 56, 63, 64 exercise all branch shapes.
class Sha256PaddingSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256PaddingSweep, MatchesIncremental) {
  std::string msg(GetParam(), 'x');
  Sha256 h;
  size_t half = msg.size() / 2;
  h.Update(msg.substr(0, half));
  h.Update(msg.substr(half));
  EXPECT_EQ(DigestToHex(h.Finish()), DigestToHex(Sha256::Hash(msg)));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256PaddingSweep,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 127,
                                           128, 129));

// --- HMAC (RFC 4231 test vectors) -------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes data = ToBytes("Hi There");
  Sha256Digest mac = HmacSha256(key, data);
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Bytes data = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(DigestToHex(HmacSha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes key(131, 0xaa);  // RFC 4231 case 6
  Bytes data = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(DigestToHex(HmacSha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DigestEqualConstantTime) {
  Sha256Digest a = Sha256::Hash(std::string("x"));
  Sha256Digest b = a;
  EXPECT_TRUE(DigestEqual(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(DigestEqual(a, b));
}

// --- RSA ---------------------------------------------------------------------

class RsaTest : public ::testing::Test {
 protected:
  static RsaKeyPair MakeKeys(size_t bits, uint64_t seed) {
    Rng rng(seed);
    Result<RsaKeyPair> kp = RsaGenerateKeyPair(bits, rng);
    EXPECT_TRUE(kp.ok()) << kp.status();
    return std::move(kp).value();
  }
};

TEST_F(RsaTest, KeyGenProducesValidKey) {
  RsaKeyPair kp = MakeKeys(256, 1);
  EXPECT_EQ(kp.pub.n.BitLength(), 256u);
  EXPECT_EQ(kp.pub.e.ToDecimal(), "65537");
  // d*e ≡ 1 mod phi(n).
  BigInt phi = (kp.priv.p - BigInt(1)) * (kp.priv.q - BigInt(1));
  EXPECT_EQ((kp.priv.d * kp.priv.e).Mod(phi).value().ToDecimal(), "1");
  EXPECT_EQ((kp.priv.p * kp.priv.q).ToDecimal(), kp.pub.n.ToDecimal());
}

TEST_F(RsaTest, RawRoundTrip) {
  RsaKeyPair kp = MakeKeys(256, 2);
  BigInt m(123456789);
  BigInt s = RsaPrivateOp(kp.priv, m).value();
  BigInt back = RsaPublicOp(kp.pub, s).value();
  EXPECT_EQ(back.ToDecimal(), m.ToDecimal());
}

TEST_F(RsaTest, SignVerify) {
  RsaKeyPair kp = MakeKeys(256, 3);
  Bytes msg = ToBytes("reachable(a,c) from a");
  Bytes sig = RsaSign(kp.priv, msg).value();
  EXPECT_EQ(sig.size(), kp.pub.ByteLength());
  EXPECT_TRUE(RsaVerify(kp.pub, msg, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  RsaKeyPair kp = MakeKeys(256, 4);
  Bytes msg = ToBytes("link(a,b)");
  Bytes sig = RsaSign(kp.priv, msg).value();
  Bytes tampered = ToBytes("link(a,c)");
  Status s = RsaVerify(kp.pub, tampered, sig);
  EXPECT_EQ(s.code(), StatusCode::kUnauthenticated);
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  RsaKeyPair kp = MakeKeys(256, 5);
  Bytes msg = ToBytes("link(a,b)");
  Bytes sig = RsaSign(kp.priv, msg).value();
  sig[sig.size() / 2] ^= 0x40;
  EXPECT_FALSE(RsaVerify(kp.pub, msg, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  RsaKeyPair kp1 = MakeKeys(256, 6);
  RsaKeyPair kp2 = MakeKeys(256, 7);
  Bytes msg = ToBytes("bestPath(a,d)");
  Bytes sig = RsaSign(kp1.priv, msg).value();
  EXPECT_FALSE(RsaVerify(kp2.pub, msg, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongLength) {
  RsaKeyPair kp = MakeKeys(256, 8);
  Bytes msg = ToBytes("x");
  Bytes sig = RsaSign(kp.priv, msg).value();
  sig.pop_back();
  EXPECT_FALSE(RsaVerify(kp.pub, msg, sig).ok());
}

TEST_F(RsaTest, LargerKeyEmbedsFullDigest) {
  RsaKeyPair kp = MakeKeys(512, 9);
  Bytes msg = ToBytes("full digest fits at 512 bits");
  Bytes sig = RsaSign(kp.priv, msg).value();
  EXPECT_TRUE(RsaVerify(kp.pub, msg, sig).ok());
  EXPECT_EQ(sig.size(), 64u);
}

TEST_F(RsaTest, RejectsBadKeySizes) {
  Rng rng(10);
  EXPECT_FALSE(RsaGenerateKeyPair(100, rng).ok());  // not >=128
  EXPECT_FALSE(RsaGenerateKeyPair(129, rng).ok());  // odd
}

class RsaKeySizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RsaKeySizeSweep, SignVerifyAtSize) {
  Rng rng(40 + GetParam());
  RsaKeyPair kp = RsaGenerateKeyPair(GetParam(), rng).value();
  Bytes msg = ToBytes("sweep message");
  Bytes sig = RsaSign(kp.priv, msg).value();
  EXPECT_TRUE(RsaVerify(kp.pub, msg, sig).ok());
  Bytes other = ToBytes("sweep message!");
  EXPECT_FALSE(RsaVerify(kp.pub, other, sig).ok());
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaKeySizeSweep,
                         ::testing::Values(192, 256, 384, 512));

// --- KeyStore ----------------------------------------------------------------

TEST(KeyStoreTest, DeterministicAcrossInstances) {
  KeyStore ks1(1234, 256);
  KeyStore ks2(1234, 256);
  const RsaPublicKey* p1 = ks1.PublicKeyFor("alice").value();
  const RsaPublicKey* p2 = ks2.PublicKeyFor("alice").value();
  EXPECT_EQ(p1->n.ToDecimal(), p2->n.ToDecimal());
  EXPECT_EQ(ks1.HmacKeyFor("alice"), ks2.HmacKeyFor("alice"));
}

TEST(KeyStoreTest, DistinctPrincipalsDistinctKeys) {
  KeyStore ks(1, 256);
  EXPECT_NE(ks.PublicKeyFor("a").value()->n.ToDecimal(),
            ks.PublicKeyFor("b").value()->n.ToDecimal());
  EXPECT_NE(ks.HmacKeyFor("a"), ks.HmacKeyFor("b"));
  EXPECT_EQ(ks.size(), 2u);
}

TEST(KeyStoreTest, SeedChangesKeys) {
  KeyStore ks1(1, 256), ks2(2, 256);
  EXPECT_NE(ks1.PublicKeyFor("a").value()->n.ToDecimal(),
            ks2.PublicKeyFor("a").value()->n.ToDecimal());
}

TEST(KeyStoreTest, CachesEntries) {
  KeyStore ks(1, 256);
  const RsaPublicKey* first = ks.PublicKeyFor("a").value();
  const RsaPublicKey* second = ks.PublicKeyFor("a").value();
  EXPECT_EQ(first, second);  // same cached object
}

// --- Authenticator (says) ------------------------------------------------------

class AuthenticatorTest : public ::testing::Test {
 protected:
  AuthenticatorTest() : keystore_(99, 256), auth_(&keystore_) {}
  KeyStore keystore_;
  Authenticator auth_;
};

TEST_F(AuthenticatorTest, CleartextAlwaysVerifies) {
  Bytes payload = ToBytes("tuple bytes");
  SaysTag tag = auth_.Say("a", payload, SaysLevel::kCleartext).value();
  EXPECT_TRUE(tag.proof.empty());
  EXPECT_TRUE(auth_.Verify(tag, payload).ok());
  EXPECT_EQ(auth_.sign_count(), 0u);  // cleartext is free
}

TEST_F(AuthenticatorTest, HmacRoundTrip) {
  Bytes payload = ToBytes("tuple bytes");
  SaysTag tag = auth_.Say("a", payload, SaysLevel::kHmac).value();
  EXPECT_EQ(tag.proof.size(), kSha256DigestSize);
  EXPECT_TRUE(auth_.Verify(tag, payload).ok());
}

TEST_F(AuthenticatorTest, HmacDetectsTamper) {
  Bytes payload = ToBytes("tuple bytes");
  SaysTag tag = auth_.Say("a", payload, SaysLevel::kHmac).value();
  Bytes other = ToBytes("tuple byteZ");
  EXPECT_EQ(auth_.Verify(tag, other).code(), StatusCode::kUnauthenticated);
}

TEST_F(AuthenticatorTest, RsaRoundTripAndTamper) {
  Bytes payload = ToBytes("reachable(a,c)");
  SaysTag tag = auth_.Say("a", payload, SaysLevel::kRsa).value();
  EXPECT_TRUE(auth_.Verify(tag, payload).ok());
  Bytes other = ToBytes("reachable(a,d)");
  EXPECT_FALSE(auth_.Verify(tag, other).ok());
}

TEST_F(AuthenticatorTest, ImpersonationFails) {
  // b cannot forge "a says": tag claims principal a but was MACed/signed by b.
  Bytes payload = ToBytes("route update");
  SaysTag forged = auth_.Say("b", payload, SaysLevel::kRsa).value();
  forged.principal = "a";
  EXPECT_FALSE(auth_.Verify(forged, payload).ok());
}

TEST_F(AuthenticatorTest, TagSerializationRoundTrip) {
  Bytes payload = ToBytes("x");
  for (SaysLevel level :
       {SaysLevel::kCleartext, SaysLevel::kHmac, SaysLevel::kRsa}) {
    SaysTag tag = auth_.Say("node7", payload, level).value();
    ByteWriter w;
    tag.Serialize(w);
    EXPECT_EQ(w.size(), tag.WireSize());
    ByteReader r(w.bytes());
    SaysTag back = SaysTag::Deserialize(r).value();
    EXPECT_EQ(back.level, tag.level);
    EXPECT_EQ(back.principal, tag.principal);
    EXPECT_EQ(back.proof, tag.proof);
    EXPECT_TRUE(auth_.Verify(back, payload).ok());
  }
}

TEST_F(AuthenticatorTest, DeserializeRejectsBadLevel) {
  ByteWriter w;
  w.PutU8(9);
  w.PutString("a");
  w.PutBlob({});
  ByteReader r(w.bytes());
  EXPECT_FALSE(SaysTag::Deserialize(r).ok());
}

TEST_F(AuthenticatorTest, WireSizeOrderingMatchesSecurityLadder) {
  // The says ladder trades security for bytes: cleartext < hmac <= rsa
  // (an RSA proof is modulus-sized, so it ties HMAC at 256-bit keys and
  // dominates at realistic sizes).
  Bytes payload = ToBytes("payload");
  size_t clear =
      auth_.Say("a", payload, SaysLevel::kCleartext).value().WireSize();
  size_t hmac = auth_.Say("a", payload, SaysLevel::kHmac).value().WireSize();
  size_t rsa = auth_.Say("a", payload, SaysLevel::kRsa).value().WireSize();
  EXPECT_LT(clear, hmac);
  EXPECT_LE(hmac, rsa);

  KeyStore big_store(7, 512);
  Authenticator big_auth(&big_store);
  size_t rsa512 =
      big_auth.Say("a", payload, SaysLevel::kRsa).value().WireSize();
  EXPECT_LT(hmac, rsa512);
}

TEST_F(AuthenticatorTest, CountersTrackOperations) {
  Bytes payload = ToBytes("p");
  auth_.ResetCounters();
  SaysTag t1 = auth_.Say("a", payload, SaysLevel::kRsa).value();
  SaysTag t2 = auth_.Say("a", payload, SaysLevel::kHmac).value();
  EXPECT_TRUE(auth_.Verify(t1, payload).ok());
  EXPECT_TRUE(auth_.Verify(t2, payload).ok());
  EXPECT_EQ(auth_.sign_count(), 2u);
  EXPECT_EQ(auth_.verify_count(), 2u);
}

}  // namespace
}  // namespace provnet
